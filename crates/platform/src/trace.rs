//! Microsecond-granularity execution tracing.
//!
//! A deterministic, fixed-capacity ring-buffer span recorder threaded
//! through the pool's hot path (task dispatch/complete/requeue, accelerator
//! offload and fallback), the scheduler (reallocation decisions, guard
//! inflation), the predictor supervisor (lane lifecycle transitions,
//! admission-level changes and rejects) and the fault timeline
//! (activation/deactivation). The paper's own design leans on a
//! low-overhead online profiler recording per-task runtimes at microsecond
//! granularity (§5); this module is the observability spine that lets the
//! reproduction answer "*why* did this window miss its deadline" instead of
//! only "how often".
//!
//! ## Determinism contract
//!
//! Recording must never perturb the simulation: [`TraceRecorder::record`]
//! touches no RNG stream, schedules no event and allocates nothing once the
//! ring is warm ([`TraceEvent`] is `Copy`; the buffer is preallocated at
//! construction). A run with tracing enabled therefore produces a report
//! byte-identical to the same seed with tracing disabled — the
//! `trace_overhead` bench and CI enforce this.
//!
//! When the ring is full the *oldest* record is overwritten and a dropped
//! counter is bumped; the exported trace is the most recent
//! `capacity`-record suffix of the run, which is exactly what post-mortem
//! debugging of a late deadline miss needs.
//!
//! ## Exporters
//!
//! * [`export_chrome_trace`] — Chrome trace-event JSON (the
//!   `{"traceEvents": [...]}` form), loadable in Perfetto / `chrome://tracing`.
//!   One track per core plus dedicated scheduler, supervisor, accelerator
//!   and fault-timeline tracks. Records are emitted in ring order (time
//!   order), so per-track timestamps are monotone by construction.
//! * [`export_snapshots`] — the flat per-window metrics snapshots
//!   ([`WindowSnapshot`]) as a JSON array, for spreadsheet-style analysis.

use crate::faults::FaultKind;
use concordia_ran::task::TaskKind;
use concordia_ran::time::Nanos;
use serde::{Deserialize, Serialize, Value};

/// Supervisor-lane state code: serving the primary model.
pub const LANE_HEALTHY: u8 = 0;
/// Supervisor-lane state code: drifted, serving the fallback.
pub const LANE_QUARANTINED: u8 = 1;
/// Supervisor-lane state code: retrained candidate under shadow evaluation.
pub const LANE_SHADOW: u8 = 2;

/// Admission-level code: everything admitted.
pub const ADMISSION_NORMAL: u8 = 0;
/// Admission-level code: best-effort work shed.
pub const ADMISSION_SHED: u8 = 1;
/// Admission-level code: new slot DAGs rejected.
pub const ADMISSION_REJECT: u8 = 2;

/// Human-readable name of a lane-state code (mirrors
/// `concordia_sched::supervisor::LaneState::name`; the codes exist because
/// the platform crate cannot see the scheduler's types).
pub fn lane_state_name(code: u8) -> &'static str {
    match code {
        LANE_HEALTHY => "healthy",
        LANE_QUARANTINED => "quarantined",
        LANE_SHADOW => "shadow",
        _ => "unknown",
    }
}

/// Human-readable name of an admission-level code.
pub fn admission_level_name(code: u8) -> &'static str {
    match code {
        ADMISSION_NORMAL => "normal",
        ADMISSION_SHED => "shed",
        ADMISSION_REJECT => "reject",
        _ => "unknown",
    }
}

/// Tracing configuration, carried in `SimConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Ring capacity in records. When full, the oldest record is dropped.
    pub capacity: u64,
    /// Period, in slots, of the flat per-window metrics snapshots. 0
    /// disables snapshots.
    pub snapshot_slots: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            // ~10 MB of records — enough for the last few hundred
            // milliseconds of a fully loaded 100 MHz run.
            capacity: 262_144,
            snapshot_slots: 100,
        }
    }
}

/// One traced event. `Copy` and allocation-free by design: recording on the
/// pool's hot path must not touch the allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A worker started executing a node (`runtime` is the sampled
    /// duration; for `offload` starts it is the CPU submission cost).
    TaskStart {
        /// Cell the DAG belongs to.
        cell: u32,
        /// Executing core.
        core: u32,
        /// DAG slot index.
        dag: u32,
        /// Node index within the DAG.
        node: u32,
        /// Task kind.
        kind: TaskKind,
        /// Sampled runtime (submission cost for offloads).
        runtime: Nanos,
        /// The node was submitted to the accelerator.
        offload: bool,
    },
    /// A worker finished a node's CPU execution (or its offload submission).
    TaskComplete {
        /// Cell the DAG belongs to.
        cell: u32,
        /// Core that ran it.
        core: u32,
        /// DAG slot index.
        dag: u32,
        /// Node index.
        node: u32,
    },
    /// A mid-execution task was requeued because its core went offline.
    TaskRequeue {
        /// Cell the DAG belongs to.
        cell: u32,
        /// The failed core.
        core: u32,
        /// DAG slot index.
        dag: u32,
        /// Node index.
        node: u32,
    },
    /// The accelerator finished an offloaded node.
    OffloadDone {
        /// Cell the DAG belongs to.
        cell: u32,
        /// DAG slot index.
        dag: u32,
        /// Node index.
        node: u32,
    },
    /// An offload fell back to the CPU path (engine absent, parked by an
    /// outage, or past its timeout budget).
    OffloadFallback {
        /// Cell the DAG belongs to.
        cell: u32,
        /// DAG slot index.
        dag: u32,
        /// Node index.
        node: u32,
    },
    /// A slot DAG completed.
    DagComplete {
        /// Cell the DAG belongs to.
        cell: u32,
        /// DAG slot index.
        dag: u32,
        /// Arrival-to-completion latency.
        latency: Nanos,
        /// Whether the deadline was missed.
        violated: bool,
    },
    /// A released core was signalled awake (the span covers the OS wake
    /// latency).
    CoreWake {
        /// Woken core.
        core: u32,
        /// Sampled wake latency.
        latency: Nanos,
    },
    /// A core was yielded back to best-effort work.
    CoreRelease {
        /// Released core.
        core: u32,
    },
    /// Fault injection took a core offline.
    CoreFail {
        /// Failed core.
        core: u32,
    },
    /// A faulted core rejoined the pool.
    CoreRestore {
        /// Restored core.
        core: u32,
    },
    /// The scheduler's target core count changed (reallocation decision).
    Realloc {
        /// New target.
        target: u32,
        /// Cores held at decision time.
        granted: u32,
        /// Ready-queue depth at decision time.
        ready: u32,
    },
    /// The misprediction guard's WCET inflation changed.
    GuardInflation {
        /// New multiplicative inflation (≥ 1.0).
        inflation: f64,
    },
    /// A supervisor lane changed lifecycle state (see `LANE_*` codes).
    LaneTransition {
        /// Lane (task-kind index).
        lane: u8,
        /// Previous state code.
        from: u8,
        /// New state code.
        to: u8,
    },
    /// The supervisor's admission level changed (see `ADMISSION_*` codes).
    Admission {
        /// New level code.
        level: u8,
    },
    /// Slot DAGs were refused under reject-level admission control.
    AdmissionReject {
        /// DAGs refused at this slot boundary.
        dags: u32,
    },
    /// A fault window activated.
    FaultStart {
        /// Fault class.
        kind: FaultKind,
        /// Resolved severity.
        severity: f64,
    },
    /// A fault window cleared.
    FaultEnd {
        /// Fault class.
        kind: FaultKind,
    },
    /// The pool's worker-core capacity changed at runtime (a reconfig
    /// grow/shrink).
    PoolResize {
        /// Capacity after the change.
        capacity: u32,
        /// Cores added (positive) or retired (negative).
        delta: i32,
    },
    /// A reconfiguration step was applied at a slot boundary (see
    /// `reconfig_step_name` for the step codes).
    ReconfigApply {
        /// Step-kind code.
        step: u8,
        /// Position of the step in the executed plan order.
        index: u32,
    },
    /// An applied reconfiguration step survived its settle window.
    ReconfigCommit {
        /// Position of the step in the executed plan order.
        index: u32,
    },
    /// An applied reconfiguration step violated an invariant and was
    /// reverted.
    ReconfigRollback {
        /// Position of the step in the executed plan order.
        index: u32,
    },
}

/// Human-readable name of a reconfig step code (mirrors
/// `concordia_core::reconfig::ReconfigStep::code`; the codes exist because
/// the platform crate cannot see the core crate's types).
pub fn reconfig_step_name(code: u8) -> &'static str {
    match code {
        0 => "add_cell",
        1 => "drain_cell",
        2 => "grow_pool",
        3 => "shrink_pool",
        4 => "swap_predictor",
        5 => "rephase",
        6 => "set_deadline",
        _ => "unknown",
    }
}

/// One timestamped record in the ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub t: Nanos,
    /// The event.
    pub ev: TraceEvent,
}

/// Flat per-window metrics snapshot: cumulative pool counters sampled at a
/// snapshot boundary. Differencing consecutive snapshots yields per-window
/// rates without replaying the event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// Snapshot index (0, 1, 2, …).
    pub window: u64,
    /// Simulation time of the snapshot (µs).
    pub t_us: f64,
    /// Cumulative completed DAGs.
    pub dags: u64,
    /// Cumulative deadline violations.
    pub violations: u64,
    /// Cores held by the vRAN at the snapshot.
    pub granted_cores: u32,
    /// Ready-queue depth at the snapshot.
    pub ready_tasks: u64,
    /// Cumulative tasks executed.
    pub tasks_executed: u64,
    /// Cumulative offload fallbacks.
    pub offload_fallbacks: u64,
    /// Cumulative tasks requeued by core loss.
    pub tasks_requeued: u64,
    /// The misprediction guard's inflation at the snapshot.
    pub guard_inflation: f64,
}

/// Serializable summary of a recorder, embedded in `ExperimentReport`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total events recorded (kept + dropped).
    pub events_recorded: u64,
    /// Events overwritten after the ring filled.
    pub events_dropped: u64,
    /// Ring capacity.
    pub capacity: u64,
    /// Per-window snapshots taken.
    pub snapshots: u64,
}

/// Fixed-capacity ring-buffer recorder. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    buf: Vec<TraceRecord>,
    /// Oldest record once the ring has wrapped (0 before).
    head: usize,
    dropped: u64,
    capacity: usize,
    snapshots: Vec<WindowSnapshot>,
}

impl TraceRecorder {
    /// Creates a recorder with the ring preallocated to `cfg.capacity`.
    pub fn new(cfg: TraceConfig) -> Self {
        let capacity = (cfg.capacity as usize).max(1);
        TraceRecorder {
            buf: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
            capacity,
            snapshots: Vec::new(),
        }
    }

    /// Records one event at simulation time `t`. O(1), allocation-free
    /// (the ring was preallocated), RNG-free.
    #[inline]
    pub fn record(&mut self, t: Nanos, ev: TraceEvent) {
        let rec = TraceRecord { t, ev };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Appends a per-window metrics snapshot.
    pub fn push_snapshot(&mut self, snap: WindowSnapshot) {
        self.snapshots.push(snap);
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Records currently in the ring.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The per-window snapshots, in order.
    pub fn snapshots(&self) -> &[WindowSnapshot] {
        &self.snapshots
    }

    /// Serializable summary for the experiment report.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            events_recorded: self.buf.len() as u64 + self.dropped,
            events_dropped: self.dropped,
            capacity: self.capacity as u64,
            snapshots: self.snapshots.len() as u64,
        }
    }
}

/// Track (tid) of the scheduler's decision stream in the Chrome export.
pub const TID_SCHEDULER: u32 = 1000;
/// Track of the supervisor lifecycle/admission stream.
pub const TID_SUPERVISOR: u32 = 1001;
/// Track of the fault timeline.
pub const TID_FAULTS: u32 = 1002;
/// Track of the accelerator offload stream.
pub const TID_ACCEL: u32 = 1003;
/// Track of the live-reconfiguration stream (step apply/commit/rollback,
/// pool capacity changes).
pub const TID_RECONFIG: u32 = 1004;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn us(t: Nanos) -> Value {
    Value::F64(t.as_nanos() as f64 / 1000.0)
}

fn meta_thread(tid: u32, name: &str) -> Value {
    obj(vec![
        ("name", Value::Str("thread_name".into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::U64(1)),
        ("tid", Value::U64(tid as u64)),
        ("args", obj(vec![("name", Value::Str(name.into()))])),
    ])
}

fn span(name: &str, tid: u32, t: Nanos, dur: Nanos, args: Value) -> Value {
    obj(vec![
        ("name", Value::Str(name.into())),
        ("ph", Value::Str("X".into())),
        ("pid", Value::U64(1)),
        ("tid", Value::U64(tid as u64)),
        ("ts", us(t)),
        ("dur", Value::F64(dur.as_nanos() as f64 / 1000.0)),
        ("args", args),
    ])
}

fn instant(name: &str, tid: u32, t: Nanos, args: Value) -> Value {
    obj(vec![
        ("name", Value::Str(name.into())),
        ("ph", Value::Str("i".into())),
        ("s", Value::Str("t".into())),
        ("pid", Value::U64(1)),
        ("tid", Value::U64(tid as u64)),
        ("ts", us(t)),
        ("args", args),
    ])
}

fn counter(name: &str, tid: u32, t: Nanos, args: Value) -> Value {
    obj(vec![
        ("name", Value::Str(name.into())),
        ("ph", Value::Str("C".into())),
        ("pid", Value::U64(1)),
        ("tid", Value::U64(tid as u64)),
        ("ts", us(t)),
        ("args", args),
    ])
}

/// Exports the recorder as Chrome trace-event JSON (a [`Value`] tree; call
/// `serde_json::to_string` on it). Loadable in Perfetto: one track per
/// core, plus scheduler / supervisor / accelerator / fault-timeline tracks.
/// Events are emitted in ring (time) order, so per-track timestamps are
/// monotone; the per-window snapshots ride along under a
/// `concordiaSnapshots` key that trace viewers ignore.
pub fn export_chrome_trace(rec: &TraceRecorder) -> Value {
    let mut events: Vec<Value> = Vec::new();

    // Thread-name metadata for every core track that appears, then the
    // fixed tracks.
    let mut max_core: Option<u32> = None;
    for r in rec.iter() {
        let core = match r.ev {
            TraceEvent::TaskStart { core, .. }
            | TraceEvent::TaskComplete { core, .. }
            | TraceEvent::TaskRequeue { core, .. }
            | TraceEvent::CoreWake { core, .. }
            | TraceEvent::CoreRelease { core }
            | TraceEvent::CoreFail { core }
            | TraceEvent::CoreRestore { core } => Some(core),
            _ => None,
        };
        if let Some(c) = core {
            max_core = Some(max_core.map_or(c, |m| m.max(c)));
        }
    }
    if let Some(m) = max_core {
        for c in 0..=m {
            events.push(meta_thread(c, &format!("core {c}")));
        }
    }
    events.push(meta_thread(TID_SCHEDULER, "scheduler"));
    events.push(meta_thread(TID_SUPERVISOR, "supervisor"));
    events.push(meta_thread(TID_FAULTS, "faults"));
    events.push(meta_thread(TID_ACCEL, "accel"));
    events.push(meta_thread(TID_RECONFIG, "reconfig"));

    for r in rec.iter() {
        let t = r.t;
        match r.ev {
            TraceEvent::TaskStart {
                cell,
                core,
                dag,
                node,
                kind,
                runtime,
                offload,
            } => events.push(span(
                kind.name(),
                core,
                t,
                runtime,
                obj(vec![
                    ("cell", Value::U64(cell as u64)),
                    ("dag", Value::U64(dag as u64)),
                    ("node", Value::U64(node as u64)),
                    ("offload", Value::Bool(offload)),
                ]),
            )),
            TraceEvent::TaskComplete {
                cell,
                core,
                dag,
                node,
            } => events.push(instant(
                "task_complete",
                core,
                t,
                obj(vec![
                    ("cell", Value::U64(cell as u64)),
                    ("dag", Value::U64(dag as u64)),
                    ("node", Value::U64(node as u64)),
                ]),
            )),
            TraceEvent::TaskRequeue {
                cell,
                core,
                dag,
                node,
            } => events.push(instant(
                "task_requeue",
                core,
                t,
                obj(vec![
                    ("cell", Value::U64(cell as u64)),
                    ("dag", Value::U64(dag as u64)),
                    ("node", Value::U64(node as u64)),
                ]),
            )),
            TraceEvent::OffloadDone { cell, dag, node } => events.push(instant(
                "offload_done",
                TID_ACCEL,
                t,
                obj(vec![
                    ("cell", Value::U64(cell as u64)),
                    ("dag", Value::U64(dag as u64)),
                    ("node", Value::U64(node as u64)),
                ]),
            )),
            TraceEvent::OffloadFallback { cell, dag, node } => events.push(instant(
                "offload_fallback",
                TID_ACCEL,
                t,
                obj(vec![
                    ("cell", Value::U64(cell as u64)),
                    ("dag", Value::U64(dag as u64)),
                    ("node", Value::U64(node as u64)),
                ]),
            )),
            TraceEvent::DagComplete {
                cell,
                dag,
                latency,
                violated,
            } => events.push(instant(
                if violated {
                    "dag_violated"
                } else {
                    "dag_complete"
                },
                TID_SCHEDULER,
                t,
                obj(vec![
                    ("cell", Value::U64(cell as u64)),
                    ("dag", Value::U64(dag as u64)),
                    ("latency_us", Value::F64(latency.as_micros_f64())),
                    ("violated", Value::Bool(violated)),
                ]),
            )),
            TraceEvent::CoreWake { core, latency } => events.push(span(
                "wake",
                core,
                t,
                latency,
                obj(vec![("latency_us", Value::F64(latency.as_micros_f64()))]),
            )),
            TraceEvent::CoreRelease { core } => {
                events.push(instant("core_release", core, t, obj(vec![])))
            }
            TraceEvent::CoreFail { core } => {
                events.push(instant("core_fail", core, t, obj(vec![])))
            }
            TraceEvent::CoreRestore { core } => {
                events.push(instant("core_restore", core, t, obj(vec![])))
            }
            TraceEvent::Realloc {
                target,
                granted,
                ready,
            } => events.push(counter(
                "cores",
                TID_SCHEDULER,
                t,
                obj(vec![
                    ("target", Value::U64(target as u64)),
                    ("granted", Value::U64(granted as u64)),
                    ("ready", Value::U64(ready as u64)),
                ]),
            )),
            TraceEvent::GuardInflation { inflation } => events.push(counter(
                "guard_inflation",
                TID_SCHEDULER,
                t,
                obj(vec![("inflation", Value::F64(inflation))]),
            )),
            TraceEvent::LaneTransition { lane, from, to } => events.push(instant(
                &format!(
                    "lane{} {}->{}",
                    lane,
                    lane_state_name(from),
                    lane_state_name(to)
                ),
                TID_SUPERVISOR,
                t,
                obj(vec![
                    ("lane", Value::U64(lane as u64)),
                    ("from", Value::Str(lane_state_name(from).into())),
                    ("to", Value::Str(lane_state_name(to).into())),
                ]),
            )),
            TraceEvent::Admission { level } => events.push(instant(
                &format!("admission {}", admission_level_name(level)),
                TID_SUPERVISOR,
                t,
                obj(vec![(
                    "level",
                    Value::Str(admission_level_name(level).into()),
                )]),
            )),
            TraceEvent::AdmissionReject { dags } => events.push(instant(
                "admission_reject",
                TID_SUPERVISOR,
                t,
                obj(vec![("dags", Value::U64(dags as u64))]),
            )),
            TraceEvent::FaultStart { kind, severity } => events.push(instant(
                &format!("{} start", kind.name()),
                TID_FAULTS,
                t,
                obj(vec![
                    ("kind", Value::Str(kind.name().into())),
                    ("severity", Value::F64(severity)),
                ]),
            )),
            TraceEvent::FaultEnd { kind } => events.push(instant(
                &format!("{} end", kind.name()),
                TID_FAULTS,
                t,
                obj(vec![("kind", Value::Str(kind.name().into()))]),
            )),
            TraceEvent::PoolResize { capacity, delta } => events.push(counter(
                "pool_capacity",
                TID_RECONFIG,
                t,
                obj(vec![
                    ("capacity", Value::U64(capacity as u64)),
                    ("delta", Value::F64(delta as f64)),
                ]),
            )),
            TraceEvent::ReconfigApply { step, index } => events.push(instant(
                &format!("apply {}", reconfig_step_name(step)),
                TID_RECONFIG,
                t,
                obj(vec![
                    ("step", Value::Str(reconfig_step_name(step).into())),
                    ("index", Value::U64(index as u64)),
                ]),
            )),
            TraceEvent::ReconfigCommit { index } => events.push(instant(
                "reconfig_commit",
                TID_RECONFIG,
                t,
                obj(vec![("index", Value::U64(index as u64))]),
            )),
            TraceEvent::ReconfigRollback { index } => events.push(instant(
                "reconfig_rollback",
                TID_RECONFIG,
                t,
                obj(vec![("index", Value::U64(index as u64))]),
            )),
        }
    }

    obj(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", Value::Str("ns".into())),
        ("concordiaDropped", Value::U64(rec.dropped())),
        ("concordiaSnapshots", rec.snapshots.serialize()),
    ])
}

/// Exports the flat per-window metrics snapshots as a [`Value`] array.
pub fn export_snapshots(rec: &TraceRecorder) -> Value {
    rec.snapshots.serialize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(core: u32) -> TraceEvent {
        TraceEvent::CoreRelease { core }
    }

    #[test]
    fn ring_keeps_the_newest_records() {
        let mut r = TraceRecorder::new(TraceConfig {
            capacity: 4,
            snapshot_slots: 0,
        });
        for i in 0..10u64 {
            r.record(Nanos(i), ev(i as u32));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let times: Vec<u64> = r.iter().map(|rec| rec.t.as_nanos()).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
        let s = r.summary();
        assert_eq!(s.events_recorded, 10);
        assert_eq!(s.events_dropped, 6);
        assert_eq!(s.capacity, 4);
    }

    #[test]
    fn ring_below_capacity_keeps_everything_in_order() {
        let mut r = TraceRecorder::new(TraceConfig::default());
        for i in 0..100u64 {
            r.record(Nanos(i), ev(0));
        }
        assert_eq!(r.len(), 100);
        assert_eq!(r.dropped(), 0);
        let times: Vec<u64> = r.iter().map(|rec| rec.t.as_nanos()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn recording_does_not_reallocate_the_ring() {
        let mut r = TraceRecorder::new(TraceConfig {
            capacity: 8,
            snapshot_slots: 0,
        });
        let before = r.buf.capacity();
        for i in 0..1000u64 {
            r.record(Nanos(i), ev(0));
        }
        assert_eq!(r.buf.capacity(), before, "hot path must not reallocate");
    }

    #[test]
    fn chrome_export_is_wellformed_and_monotone() {
        let mut r = TraceRecorder::new(TraceConfig::default());
        r.record(
            Nanos(1_000),
            TraceEvent::TaskStart {
                cell: 0,
                core: 0,
                dag: 0,
                node: 0,
                kind: TaskKind::Fft,
                runtime: Nanos(2_000),
                offload: false,
            },
        );
        r.record(
            Nanos(3_000),
            TraceEvent::TaskComplete {
                cell: 0,
                core: 0,
                dag: 0,
                node: 0,
            },
        );
        r.record(
            Nanos(3_000),
            TraceEvent::DagComplete {
                cell: 0,
                dag: 0,
                latency: Nanos(3_000),
                violated: false,
            },
        );
        r.record(
            Nanos(4_000),
            TraceEvent::FaultStart {
                kind: FaultKind::CoreOffline,
                severity: 0.5,
            },
        );
        r.push_snapshot(WindowSnapshot {
            window: 0,
            t_us: 4.0,
            dags: 1,
            violations: 0,
            granted_cores: 1,
            ready_tasks: 0,
            tasks_executed: 1,
            offload_fallbacks: 0,
            tasks_requeued: 0,
            guard_inflation: 1.0,
        });
        let v = export_chrome_trace(&r);
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\"") || json.contains("\"ph\":\"X\""));
        // Parse back and check per-track monotone timestamps.
        let back: Value = serde_json::from_str(&json).unwrap();
        let Value::Map(top) = &back else {
            panic!("top level must be an object")
        };
        let events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .unwrap();
        let Value::Seq(events) = events else {
            panic!("traceEvents must be an array")
        };
        assert!(!events.is_empty());
        let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        for e in events {
            let Value::Map(m) = e else {
                panic!("event must be an object")
            };
            let ph = m.iter().find(|(k, _)| k == "ph").map(|(_, v)| v).unwrap();
            if matches!(ph, Value::Str(s) if s == "M") {
                continue;
            }
            let tid = match m.iter().find(|(k, _)| k == "tid").map(|(_, v)| v) {
                Some(Value::U64(t)) => *t,
                other => panic!("tid must be an integer, got {other:?}"),
            };
            let ts = match m.iter().find(|(k, _)| k == "ts").map(|(_, v)| v) {
                Some(Value::F64(t)) => *t,
                Some(Value::U64(t)) => *t as f64,
                other => panic!("ts must be a number, got {other:?}"),
            };
            if let Some(prev) = last_ts.get(&tid) {
                assert!(ts >= *prev, "track {tid} went backwards: {prev} -> {ts}");
            }
            last_ts.insert(tid, ts);
        }
    }

    #[test]
    fn snapshot_export_round_trips() {
        let mut r = TraceRecorder::new(TraceConfig::default());
        r.push_snapshot(WindowSnapshot {
            window: 3,
            t_us: 1500.0,
            dags: 42,
            violations: 1,
            granted_cores: 6,
            ready_tasks: 2,
            tasks_executed: 900,
            offload_fallbacks: 0,
            tasks_requeued: 1,
            guard_inflation: 1.25,
        });
        let json = serde_json::to_string(&export_snapshots(&r)).unwrap();
        let back: Vec<WindowSnapshot> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r.snapshots);
    }

    #[test]
    fn code_tables_name_every_state() {
        assert_eq!(lane_state_name(LANE_HEALTHY), "healthy");
        assert_eq!(lane_state_name(LANE_QUARANTINED), "quarantined");
        assert_eq!(lane_state_name(LANE_SHADOW), "shadow");
        assert_eq!(admission_level_name(ADMISSION_NORMAL), "normal");
        assert_eq!(admission_level_name(ADMISSION_SHED), "shed");
        assert_eq!(admission_level_name(ADMISSION_REJECT), "reject");
    }
}
