//! Runtime state of the FPGA offload engine inside the pool simulator.

use concordia_ran::accel::{FpgaModel, FpgaQueue};
use concordia_ran::task::TaskKind;
use concordia_ran::time::Nanos;

/// FPGA model plus its FIFO occupancy.
#[derive(Debug, Clone)]
pub struct FpgaState {
    model: FpgaModel,
    queue: FpgaQueue,
}

impl FpgaState {
    /// Creates an idle engine.
    pub fn new(model: FpgaModel) -> Self {
        FpgaState {
            model,
            queue: FpgaQueue::new(),
        }
    }

    /// CPU cost the submitting worker pays per request.
    pub fn submit_cost(&self) -> Nanos {
        self.model.submit_cost()
    }

    /// Enqueues an offloaded task; returns its completion time.
    pub fn submit(&mut self, now: Nanos, kind: TaskKind, n_cbs: u32) -> Nanos {
        let service = self.model.service_latency(kind, n_cbs.max(1));
        self.queue.enqueue(now, service)
    }

    /// Completion time a request submitted at `now` *would* get, without
    /// enqueueing it. The fault layer's per-offload timeout check peeks
    /// before committing so a timed-out request never occupies the engine.
    pub fn projected_completion(&self, now: Nanos, kind: TaskKind, n_cbs: u32) -> Nanos {
        let service = self.model.service_latency(kind, n_cbs.max(1));
        self.queue.busy_until().max(now) + service
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.queue.served()
    }

    /// Accumulated engine busy time.
    pub fn busy_time(&self) -> Nanos {
        self.queue.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submissions_serialize_on_the_engine() {
        let mut f = FpgaState::new(FpgaModel::default());
        let c1 = f.submit(Nanos::ZERO, TaskKind::LdpcDecode, 6);
        let c2 = f.submit(Nanos::ZERO, TaskKind::LdpcDecode, 6);
        assert!(c2 > c1);
        assert_eq!(f.served(), 2);
        assert!(f.busy_time() > Nanos::ZERO);
    }

    #[test]
    fn projection_matches_submit_and_does_not_mutate() {
        let mut f = FpgaState::new(FpgaModel::default());
        f.submit(Nanos::ZERO, TaskKind::LdpcDecode, 6);
        let p1 = f.projected_completion(Nanos::ZERO, TaskKind::LdpcDecode, 6);
        let p2 = f.projected_completion(Nanos::ZERO, TaskKind::LdpcDecode, 6);
        assert_eq!(p1, p2, "peeking must not occupy the engine");
        assert_eq!(f.submit(Nanos::ZERO, TaskKind::LdpcDecode, 6), p1);
    }

    #[test]
    fn zero_cb_requests_are_clamped() {
        let mut f = FpgaState::new(FpgaModel::default());
        let c = f.submit(Nanos::ZERO, TaskKind::LdpcEncode, 0);
        assert!(c > Nanos::ZERO);
    }
}
