//! Experiment metrics: slot latency percentiles, deadline reliability,
//! reclaimed CPU, scheduling-event histograms.

use concordia_ran::time::Nanos;
use concordia_stats::hist::Log2Histogram;
use concordia_stats::summary::quantile_sorted;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};

/// Records per-slot (per-DAG) processing latencies and deadline outcomes.
#[derive(Debug, Clone, Default)]
pub struct SlotLatencyRecorder {
    latencies_us: Vec<f64>,
    violations: u64,
    /// Completion time and deadline outcome of every DAG, in completion
    /// order — the raw material for per-fault-window reliability
    /// accounting (violations before/during/after each window).
    outcomes: Vec<SlotOutcome>,
    /// Lazily rebuilt ascending copy of `latencies_us`, shared by every
    /// quantile query until the next `record_at` invalidates it. Interior
    /// mutability keeps `quantile_us` callable through `&self` (summaries
    /// are read-only); the recorder is only ever owned by one pool, never
    /// shared across threads.
    sorted: RefCell<Vec<f64>>,
    sorted_valid: Cell<bool>,
    /// Full sorts performed — the regression guard that the summary path
    /// sorts at most once per batch of recordings.
    sorts: Cell<u64>,
    /// NaN latency samples seen. A NaN is counted here and *excluded* from
    /// the latency series (it has no place in a quantile or a mean) instead
    /// of aborting the run — a multi-minute soak must not die on one
    /// poisoned sample.
    nan_samples: u64,
}

/// One completed DAG's timing outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotOutcome {
    /// When the DAG completed.
    pub completed_at: Nanos,
    /// Whether it missed its deadline.
    pub violated: bool,
}

impl SlotLatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed DAG (completion time unknown / irrelevant).
    pub fn record(&mut self, latency: Nanos, deadline_budget: Nanos) {
        self.record_at(Nanos::ZERO, latency, deadline_budget);
    }

    /// Records one completed DAG together with its completion time, so
    /// fault-window accounting can attribute it to a timeline phase.
    pub fn record_at(&mut self, completed_at: Nanos, latency: Nanos, deadline_budget: Nanos) {
        self.record_sample(
            completed_at,
            latency.as_micros_f64(),
            latency > deadline_budget,
        );
    }

    /// Raw-µs entry point for external recorders. A NaN latency is counted
    /// in [`Self::nan_samples`] and otherwise dropped (no outcome, no
    /// violation): it carries no ordering information, and the historical
    /// behaviour — a `partial_cmp().expect()` panic on the next quantile
    /// query — turned one bad sample into a dead soak.
    pub fn record_sample(&mut self, completed_at: Nanos, latency_us: f64, violated: bool) {
        if latency_us.is_nan() {
            self.nan_samples += 1;
            return;
        }
        self.latencies_us.push(latency_us);
        self.sorted_valid.set(false);
        if violated {
            self.violations += 1;
        }
        self.outcomes.push(SlotOutcome {
            completed_at,
            violated,
        });
    }

    /// Number of completed DAGs.
    pub fn count(&self) -> usize {
        self.latencies_us.len()
    }

    /// Number of deadline violations.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Fraction of DAGs that met their deadline (the reliability readout;
    /// the paper requires ≥ 0.99999). Returns 1.0 for an empty recorder.
    pub fn reliability(&self) -> f64 {
        if self.latencies_us.is_empty() {
            1.0
        } else {
            1.0 - self.violations as f64 / self.latencies_us.len() as f64
        }
    }

    /// Mean latency in µs.
    pub fn mean_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            0.0
        } else {
            self.latencies_us.iter().sum::<f64>() / self.latencies_us.len() as f64
        }
    }

    /// Latency quantile in µs (e.g. 0.9999 and 0.99999 for Fig. 11).
    /// `None` when no DAG has completed — an empty tail is *unknown*, not
    /// zero, and reporting 0 µs silently passed for perfect.
    ///
    /// The ascending view is cached: a summary requesting several
    /// quantiles sorts once, not once per call (report generation used to
    /// be O(k·n log n) at hundreds of thousands of samples).
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        if self.latencies_us.is_empty() {
            return None;
        }
        if !self.sorted_valid.get() {
            let mut s = self.sorted.borrow_mut();
            s.clear();
            s.extend_from_slice(&self.latencies_us);
            // total_cmp: NaN can no longer reach this series (record_sample
            // filters it), but a total order keeps the sort panic-free even
            // if a future caller slips one through.
            s.sort_by(f64::total_cmp);
            drop(s);
            self.sorted_valid.set(true);
            self.sorts.set(self.sorts.get() + 1);
        }
        Some(quantile_sorted(&self.sorted.borrow(), q))
    }

    /// Full sorts performed so far (regression guard for the cached view).
    pub fn sorts_performed(&self) -> u64 {
        self.sorts.get()
    }

    /// NaN latency samples counted (and excluded) so far.
    pub fn nan_samples(&self) -> u64 {
        self.nan_samples
    }

    /// Raw latencies (µs) for downstream analysis.
    pub fn latencies_us(&self) -> &[f64] {
        &self.latencies_us
    }

    /// Per-DAG completion outcomes in completion order.
    pub fn outcomes(&self) -> &[SlotOutcome] {
        &self.outcomes
    }
}

/// Per-cell DAG accounting: with several cells multiplexed onto one pool,
/// aggregate reliability can hide a single starving cell. These counters
/// keep the per-cell ledger (and feed the cross-cell conservation checks:
/// every injected DAG must eventually complete, per cell).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellCounters {
    /// DAGs released to the pool by this cell.
    pub injected: u64,
    /// DAGs of this cell that ran to completion.
    pub completed: u64,
    /// Completed DAGs of this cell that missed their deadline.
    pub violations: u64,
}

impl CellCounters {
    /// Fraction of this cell's completed DAGs that met their deadline.
    pub fn reliability(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            1.0 - self.violations as f64 / self.completed as f64
        }
    }
}

/// Aggregate platform metrics for one experiment run.
#[derive(Debug, Clone, Default)]
pub struct PoolMetrics {
    /// Per-DAG latency recorder.
    pub slots: SlotLatencyRecorder,
    /// Wake-latency histogram in µs buckets (Fig. 10).
    pub wake_hist: Log2Histogram,
    /// Number of worker wake (scheduling) events.
    pub wake_events: u64,
    /// Number of vRAN-induced evictions of best-effort work (core taken
    /// back from the OS).
    pub evictions: u64,
    /// Total core-time granted to best-effort work.
    pub besteffort_core_time: Nanos,
    /// Total core-time the vRAN held cores (granted, whether busy or
    /// spinning).
    pub vran_core_time: Nanos,
    /// Total core-time vRAN workers were actually executing tasks.
    pub vran_busy_time: Nanos,
    /// Interference counters (Fig. 9).
    pub counters: crate::cache::CounterAccumulator,
    /// Tasks executed.
    pub tasks_executed: u64,
    /// Core-time spent offline due to injected core faults (counted toward
    /// neither the vRAN nor best-effort work).
    pub offline_core_time: Nanos,
    /// Cores taken offline by fault injection (cumulative events).
    pub cores_failed: u64,
    /// Offloaded tasks re-routed to the CPU path (accelerator absent,
    /// failed, or past its timeout budget).
    pub offload_fallbacks: u64,
    /// Tasks requeued after their core went offline mid-execution.
    pub tasks_requeued: u64,
    /// Per-cell DAG ledger, indexed by cell id (grown on first use).
    pub per_cell: Vec<CellCounters>,
}

impl PoolMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one DAG released by `cell`.
    pub fn record_injected(&mut self, cell: u32) {
        self.cell_mut(cell).injected += 1;
    }

    /// Counts one DAG of `cell` running to completion.
    pub fn record_completed(&mut self, cell: u32, violated: bool) {
        let c = self.cell_mut(cell);
        c.completed += 1;
        if violated {
            c.violations += 1;
        }
    }

    fn cell_mut(&mut self, cell: u32) -> &mut CellCounters {
        let idx = cell as usize;
        if idx >= self.per_cell.len() {
            self.per_cell.resize(idx + 1, CellCounters::default());
        }
        &mut self.per_cell[idx]
    }

    /// Fraction of total core-time reclaimed for best-effort work
    /// (Fig. 8a's y-axis), given the pool size and the observed duration.
    pub fn reclaimed_fraction(&self, cores: u32, duration: Nanos) -> f64 {
        let total = cores as f64 * duration.as_nanos() as f64;
        if total <= 0.0 {
            0.0
        } else {
            self.besteffort_core_time.as_nanos() as f64 / total
        }
    }

    /// vRAN CPU utilization over the cores it held: busy / held (the
    /// Fig. 4a readout is busy over *all* pool core-time; see
    /// [`PoolMetrics::utilization_of_pool`]).
    pub fn utilization_of_held(&self) -> f64 {
        if self.vran_core_time == Nanos::ZERO {
            0.0
        } else {
            self.vran_busy_time.as_nanos() as f64 / self.vran_core_time.as_nanos() as f64
        }
    }

    /// vRAN CPU utilization over the whole pool (busy core-time over
    /// `cores × duration`) — the Fig. 4a "Avg CPU util" column.
    pub fn utilization_of_pool(&self, cores: u32, duration: Nanos) -> f64 {
        let total = cores as f64 * duration.as_nanos() as f64;
        if total <= 0.0 {
            0.0
        } else {
            self.vran_busy_time.as_nanos() as f64 / total
        }
    }
}

/// Serializable summary of [`PoolMetrics`] for experiment reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Completed DAGs.
    pub dags: usize,
    /// Deadline violations.
    pub violations: u64,
    /// Deadline reliability.
    pub reliability: f64,
    /// Mean slot latency (µs).
    pub mean_latency_us: f64,
    /// 99.99th-percentile slot latency (µs; `None` when no DAG completed —
    /// NaN would serialize as `null` and break report round-trips).
    pub p9999_latency_us: Option<f64>,
    /// 99.999th-percentile slot latency (µs; `None` when no DAG completed).
    pub p99999_latency_us: Option<f64>,
    /// Reclaimed CPU fraction.
    pub reclaimed_fraction: f64,
    /// vRAN pool utilization (busy over pool).
    pub pool_utilization: f64,
    /// Worker wake events.
    pub wake_events: u64,
    /// Wake events at or above 64 µs.
    pub wake_tail_events: u64,
    /// Best-effort evictions.
    pub evictions: u64,
    /// Stall-cycle increase (%) vs isolated.
    pub stall_cycles_pct: f64,
    /// Tasks executed.
    pub tasks_executed: u64,
    /// Cores taken offline by fault injection.
    pub cores_failed: u64,
    /// Offloads re-routed to the CPU path (accelerator absent/failed/slow).
    pub offload_fallbacks: u64,
    /// Tasks requeued after losing their core mid-execution.
    pub tasks_requeued: u64,
    /// Total vRAN busy core-time in milliseconds.
    pub vran_busy_ms: f64,
    /// Wake-latency log2 histogram counts (bucket 0 = 0-1 µs, 1 = 2-3 µs,
    /// 2 = 4-7 µs, … — the Fig. 10 `runqlat` layout).
    pub wake_hist_counts: Vec<u64>,
    /// Per-cell DAG ledger, indexed by cell id.
    pub per_cell: Vec<CellCounters>,
    /// NaN latency samples counted (and excluded from the latency series)
    /// instead of aborting the run. Skipped when zero so reports from
    /// NaN-free runs — every golden — keep their exact historical bytes.
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub nan_samples: u64,
}

fn u64_is_zero(v: &u64) -> bool {
    *v == 0
}

impl PoolMetrics {
    /// Produces the serializable summary.
    pub fn summary(&self, cores: u32, duration: Nanos) -> MetricsSummary {
        MetricsSummary {
            dags: self.slots.count(),
            violations: self.slots.violations(),
            reliability: self.slots.reliability(),
            mean_latency_us: self.slots.mean_us(),
            p9999_latency_us: self.slots.quantile_us(0.9999),
            p99999_latency_us: self.slots.quantile_us(0.99999),
            reclaimed_fraction: self.reclaimed_fraction(cores, duration),
            pool_utilization: self.utilization_of_pool(cores, duration),
            wake_events: self.wake_events,
            wake_tail_events: self.wake_hist.count_at_or_above(64),
            evictions: self.evictions,
            stall_cycles_pct: self.counters.deltas().stall_cycles_pct,
            tasks_executed: self.tasks_executed,
            cores_failed: self.cores_failed,
            offload_fallbacks: self.offload_fallbacks,
            tasks_requeued: self.tasks_requeued,
            vran_busy_ms: self.vran_busy_time.as_millis_f64(),
            wake_hist_counts: self.wake_hist.counts().to_vec(),
            per_cell: self.per_cell.clone(),
            nan_samples: self.slots.nan_samples(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_counts_violations() {
        let mut r = SlotLatencyRecorder::new();
        let budget = Nanos::from_millis(1);
        for i in 0..1000 {
            let lat = if i < 3 {
                Nanos::from_millis(2)
            } else {
                Nanos::from_micros(500)
            };
            r.record(lat, budget);
        }
        assert_eq!(r.violations(), 3);
        assert!((r.reliability() - 0.997).abs() < 1e-12);
    }

    #[test]
    fn empty_recorder_is_fully_reliable() {
        let r = SlotLatencyRecorder::new();
        assert_eq!(r.reliability(), 1.0);
        assert_eq!(r.mean_us(), 0.0);
        // The tail of zero samples is unknown, not zero.
        assert_eq!(r.quantile_us(0.9999), None);
    }

    #[test]
    fn empty_quantile_surfaces_as_none_in_summary() {
        let m = PoolMetrics::new();
        let s = m.summary(4, Nanos::from_secs(1));
        assert_eq!(s.p9999_latency_us, None);
        assert_eq!(s.p99999_latency_us, None);
        // The empty summary must survive a serde round trip: the old
        // `f64::NAN` encoding serialized as `null` and failed to parse
        // back into an `f64`.
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.p9999_latency_us, None);
        assert_eq!(back.p99999_latency_us, None);
    }

    #[test]
    fn summary_path_sorts_at_most_once_per_recorder() {
        let mut m = PoolMetrics::new();
        let budget = Nanos::from_millis(1);
        for i in 0..500 {
            m.slots.record(Nanos::from_micros(100 + i), budget);
        }
        assert_eq!(m.slots.sorts_performed(), 0);
        // A full summary asks for two quantiles; several summaries and
        // direct quantile queries still share one sort.
        let s1 = m.summary(4, Nanos::from_secs(1));
        let s2 = m.summary(4, Nanos::from_secs(1));
        let _ = m.slots.quantile_us(0.5);
        assert_eq!(m.slots.sorts_performed(), 1, "cached view must be reused");
        assert_eq!(s1.p9999_latency_us, s2.p9999_latency_us);
        // New samples invalidate the cache exactly once.
        m.slots.record(Nanos::from_micros(9_000), budget);
        assert_eq!(m.slots.quantile_us(1.0), Some(9_000.0));
        let _ = m.slots.quantile_us(0.9999);
        assert_eq!(m.slots.sorts_performed(), 2);
    }

    #[test]
    fn cached_quantiles_match_direct_computation() {
        let mut r = SlotLatencyRecorder::new();
        let budget = Nanos::from_millis(10);
        // Descending insertion order exercises the sort.
        for i in (0..1000).rev() {
            r.record(Nanos::from_micros(i), budget);
        }
        let direct = concordia_stats::summary::quantile(r.latencies_us(), 0.9999);
        assert_eq!(r.quantile_us(0.9999), direct);
        assert_eq!(r.quantile_us(0.0), Some(0.0));
        assert_eq!(r.quantile_us(1.0), Some(999.0));
    }

    #[test]
    fn quantiles_reflect_tail() {
        let mut r = SlotLatencyRecorder::new();
        let budget = Nanos::from_millis(10);
        for _ in 0..9999 {
            r.record(Nanos::from_micros(100), budget);
        }
        r.record(Nanos::from_micros(5_000), budget);
        assert!(r.quantile_us(0.5).unwrap() < 150.0);
        assert!(r.quantile_us(0.99999).unwrap() > 1_000.0);
        assert!(r.quantile_us(1.0).unwrap() == 5_000.0);
    }

    #[test]
    fn nan_latency_is_counted_not_fatal() {
        let mut r = SlotLatencyRecorder::new();
        let budget = Nanos::from_millis(1);
        for i in 0..100 {
            r.record(Nanos::from_micros(100 + i), budget);
        }
        r.record_sample(Nanos::from_millis(1), f64::NAN, false);
        // The poisoned sample is ledgered, not stored: quantiles stay
        // panic-free and finite, and the series length is unchanged.
        assert_eq!(r.nan_samples(), 1);
        assert_eq!(r.count(), 100);
        assert_eq!(r.outcomes().len(), 100);
        let q = r.quantile_us(0.9999).unwrap();
        assert!(q.is_finite(), "quantile over NaN-free series: {q}");
        assert_eq!(r.quantile_us(1.0), Some(199.0));
    }

    #[test]
    fn nan_counter_surfaces_in_summary_only_when_nonzero() {
        let mut m = PoolMetrics::new();
        m.slots
            .record(Nanos::from_micros(100), Nanos::from_millis(1));
        let clean = serde_json::to_string(&m.summary(4, Nanos::from_secs(1))).unwrap();
        assert!(
            !clean.contains("nan_samples"),
            "a NaN-free run must keep its historical report bytes: {clean}"
        );
        // The key appears once a NaN was seen, and old reports without the
        // key still deserialize (defaulting to zero).
        m.slots.record_sample(Nanos::ZERO, f64::NAN, false);
        let s = m.summary(4, Nanos::from_secs(1));
        assert_eq!(s.nan_samples, 1);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"nan_samples\""));
        let back: MetricsSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nan_samples, 1);
        let old: MetricsSummary = serde_json::from_str(&clean).unwrap();
        assert_eq!(old.nan_samples, 0);
    }

    #[test]
    fn outcomes_carry_completion_times() {
        let mut r = SlotLatencyRecorder::new();
        let budget = Nanos::from_millis(1);
        r.record_at(Nanos::from_millis(3), Nanos::from_micros(500), budget);
        r.record_at(Nanos::from_millis(5), Nanos::from_millis(2), budget);
        let o = r.outcomes();
        assert_eq!(o.len(), 2);
        assert_eq!(o[0].completed_at, Nanos::from_millis(3));
        assert!(!o[0].violated);
        assert!(o[1].violated);
    }

    #[test]
    fn reclaimed_fraction_arithmetic() {
        let mut m = PoolMetrics::new();
        m.besteffort_core_time = Nanos::from_secs(6);
        let f = m.reclaimed_fraction(8, Nanos::from_secs(1));
        assert!((f - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_arithmetic() {
        let mut m = PoolMetrics::new();
        m.vran_core_time = Nanos::from_secs(4);
        m.vran_busy_time = Nanos::from_secs(1);
        assert!((m.utilization_of_held() - 0.25).abs() < 1e-12);
        assert!((m.utilization_of_pool(8, Nanos::from_secs(1)) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn per_cell_ledger_tracks_each_cell_independently() {
        let mut m = PoolMetrics::new();
        m.record_injected(0);
        m.record_injected(2);
        m.record_injected(2);
        m.record_completed(0, false);
        m.record_completed(2, true);
        // Cell 1 never appeared but the vector is dense up to the max id.
        assert_eq!(m.per_cell.len(), 3);
        assert_eq!(m.per_cell[0].injected, 1);
        assert_eq!(m.per_cell[0].completed, 1);
        assert_eq!(m.per_cell[0].violations, 0);
        assert_eq!(m.per_cell[1], CellCounters::default());
        assert_eq!(m.per_cell[2].injected, 2);
        assert_eq!(m.per_cell[2].violations, 1);
        assert_eq!(m.per_cell[2].reliability(), 0.0);
        assert_eq!(m.per_cell[1].reliability(), 1.0);
        let s = m.summary(4, Nanos::from_secs(1));
        assert_eq!(s.per_cell, m.per_cell);
        // And it survives the report round trip.
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.per_cell, m.per_cell);
    }

    #[test]
    fn summary_is_consistent() {
        let mut m = PoolMetrics::new();
        m.slots
            .record(Nanos::from_micros(100), Nanos::from_millis(1));
        m.wake_hist.record(80);
        m.wake_events = 1;
        let s = m.summary(4, Nanos::from_secs(1));
        assert_eq!(s.dags, 1);
        assert_eq!(s.wake_tail_events, 1);
        assert_eq!(s.reliability, 1.0);
    }
}
