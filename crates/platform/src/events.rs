//! Deterministic discrete-event queue.
//!
//! A binary-heap priority queue ordered by time with a monotonically
//! increasing sequence number as tie-breaker, so two events at the same
//! instant always pop in push order — a requirement for bit-reproducible
//! simulations.

use concordia_ran::time::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue over an arbitrary event payload type.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Nanos, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Pops the earliest event only if it is due at or before `t_end`.
    /// One atomic peek-and-pop: callers never need the
    /// peek-then-`pop().unwrap()` pattern that leaves a bare unwrap on the
    /// simulation hot loop.
    pub fn pop_due(&mut self, t_end: Nanos) -> Option<(Nanos, E)> {
        if self.peek_time()? > t_end {
            return None;
        }
        self.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), "c");
        q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Nanos(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(Nanos(7), ());
        assert_eq!(q.peek_time(), Some(Nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop_due(Nanos(5)), None);
        assert_eq!(q.pop_due(Nanos(10)), Some((Nanos(10), "a"))); // inclusive
        assert_eq!(q.pop_due(Nanos(15)), None);
        assert_eq!(q.pop_due(Nanos(25)), Some((Nanos(20), "b")));
        assert_eq!(q.pop_due(Nanos(u64::MAX)), None); // empty queue
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), 1);
        q.push(Nanos(50), 0);
        assert_eq!(q.pop(), Some((Nanos(50), 0)));
        q.push(Nanos(75), 2);
        assert_eq!(q.pop(), Some((Nanos(75), 2)));
        assert_eq!(q.pop(), Some((Nanos(100), 1)));
    }
}
