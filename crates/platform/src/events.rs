//! Deterministic discrete-event queues.
//!
//! Two implementations with the same contract — events ordered by time
//! with a monotonically increasing sequence number as tie-breaker, so two
//! events at the same instant always pop in push order (a requirement for
//! bit-reproducible simulations):
//!
//! - [`EventQueue`]: the original binary-heap queue, kept verbatim as the
//!   differential oracle and as the `--engine legacy` baseline.
//! - [`CalendarQueue`]: a calendar queue (one rotation of fixed-width time
//!   buckets plus an overflow heap) whose push/pop are O(1) amortized for
//!   the dense near-horizon events the slot hot path generates.
//!
//! [`EngineChoice`] selects between them; [`EngineQueue`] dispatches.

use concordia_ran::time::Nanos;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue over an arbitrary event payload type.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Nanos, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Pops the earliest event only if it is due at or before `t_end`.
    /// One atomic peek-and-pop: callers never need the
    /// peek-then-`pop().unwrap()` pattern that leaves a bare unwrap on the
    /// simulation hot loop.
    pub fn pop_due(&mut self, t_end: Nanos) -> Option<(Nanos, E)> {
        if self.peek_time()? > t_end {
            return None;
        }
        self.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Which event-engine implementation a run uses.
///
/// `Wheel` (the default) is the calendar-queue engine with the
/// allocation-free hot path; `Legacy` keeps the pre-engine binary heap and
/// per-slot allocation behavior verbatim, serving as the differential
/// oracle and the honest denominator for the throughput gate. Both must
/// produce byte-identical reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EngineChoice {
    /// Binary-heap queue plus the original per-slot allocations.
    Legacy,
    /// Calendar queue plus scratch/recycling on the hot path.
    #[default]
    Wheel,
}

impl EngineChoice {
    /// True for the default engine — lets configs skip serializing the
    /// field so existing golden bytes stay unchanged.
    pub fn is_default(v: &EngineChoice) -> bool {
        *v == EngineChoice::Wheel
    }

    /// Stable lowercase name (CLI value / bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            EngineChoice::Legacy => "legacy",
            EngineChoice::Wheel => "wheel",
        }
    }
}

/// log2 of the calendar bucket width in nanoseconds (16.384 µs). Sized so
/// one rotation (`N_BUCKETS` × width ≈ 16.8 ms) comfortably covers a slot
/// horizon of task completions at every supported numerology.
const WIDTH_SHIFT: u32 = 14;
/// Buckets per rotation (power of two so the index is a mask).
const N_BUCKETS: usize = 1024;
const BUCKET_MASK: u64 = (N_BUCKETS as u64) - 1;

/// A calendar queue: the current bucket is kept sorted (descending, popped
/// from the back), near-future events sit unsorted in their rotation
/// bucket, and everything beyond one rotation — or scheduled in the past —
/// falls back to a small binary heap. Pop compares the current bucket's
/// head with the overflow head by `(time, seq)`, so the FIFO contract is
/// exactly [`EventQueue`]'s.
///
/// All absolute bucket indices are `time >> WIDTH_SHIFT` (≤ 2^50 for any
/// `u64` time), so cursor arithmetic cannot overflow.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Entries of the cursor bucket, sorted descending by `(time, seq)`.
    current: Vec<Entry<E>>,
    /// One rotation of unsorted future buckets; an entry with absolute
    /// index `a` lives in `buckets[a & BUCKET_MASK]` iff
    /// `cursor_abs < a < cursor_abs + N_BUCKETS`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Events beyond one rotation, or pushed into the past.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// Absolute bucket index of `current`.
    cursor_abs: u64,
    /// Entries currently in `buckets` (not `current`, not `overflow`).
    in_buckets: usize,
    len: usize,
    seq: u64,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            current: Vec::new(),
            buckets: (0..N_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            cursor_abs: 0,
            in_buckets: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Nanos, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let entry = Entry { time, seq, event };
        let abs = time.as_nanos() >> WIDTH_SHIFT;
        if abs == self.cursor_abs {
            // Into the sorted current bucket. New entries carry the
            // largest seq, so among equal times they land closest to the
            // front (popped last — FIFO).
            let key = (entry.time, entry.seq);
            let at = self.current.partition_point(|e| (e.time, e.seq) > key);
            self.current.insert(at, entry);
        } else if abs > self.cursor_abs && abs - self.cursor_abs < N_BUCKETS as u64 {
            self.buckets[(abs & BUCKET_MASK) as usize].push(entry);
            self.in_buckets += 1;
        } else {
            // Beyond one rotation, or scheduled before the cursor (a
            // "past" push — the heap keeps it poppable in order).
            self.overflow.push(Reverse(entry));
        }
    }

    /// Moves the cursor forward until `current` holds the earliest
    /// in-bucket events (or no bucket events remain). Every non-empty
    /// bucket holds entries of exactly one absolute index, so the first
    /// one found becomes the new current bucket wholesale.
    fn advance(&mut self) {
        while self.current.is_empty() && self.in_buckets > 0 {
            self.cursor_abs += 1;
            let b = (self.cursor_abs & BUCKET_MASK) as usize;
            if !self.buckets[b].is_empty() {
                std::mem::swap(&mut self.current, &mut self.buckets[b]);
                self.in_buckets -= self.current.len();
                self.current
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
            }
        }
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.advance();
        // The earliest pending event is either the current bucket's head
        // or the overflow head; bucket entries are strictly later than
        // everything in `current`.
        let take_overflow = match (self.current.last(), self.overflow.peek()) {
            (Some(c), Some(Reverse(o))) => (o.time, o.seq) < (c.time, c.seq),
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        self.len -= 1;
        if take_overflow {
            self.overflow.pop().map(|Reverse(e)| (e.time, e.event))
        } else {
            self.current.pop().map(|e| (e.time, e.event))
        }
    }

    /// Pops the earliest event only if it is due at or before `t_end`.
    pub fn pop_due(&mut self, t_end: Nanos) -> Option<(Nanos, E)> {
        if self.peek_time()? > t_end {
            return None;
        }
        self.pop()
    }

    /// Time of the earliest pending event. Takes `&mut self` because the
    /// cursor may need to advance to expose the next bucket.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.advance();
        match (self.current.last(), self.overflow.peek()) {
            (Some(c), Some(Reverse(o))) => Some(c.time.min(o.time)),
            (Some(c), None) => Some(c.time),
            (None, Some(Reverse(o))) => Some(o.time),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Engine-dispatching queue: the one type the pool holds, so a run's
/// [`EngineChoice`] picks the implementation at construction and the hot
/// path pays a single predictable branch per operation.
#[derive(Debug)]
pub enum EngineQueue<E> {
    /// The binary-heap oracle.
    Legacy(EventQueue<E>),
    /// The calendar-queue engine.
    Wheel(CalendarQueue<E>),
}

impl<E> EngineQueue<E> {
    /// An empty queue for `engine`.
    pub fn new(engine: EngineChoice) -> Self {
        match engine {
            EngineChoice::Legacy => EngineQueue::Legacy(EventQueue::new()),
            EngineChoice::Wheel => EngineQueue::Wheel(CalendarQueue::new()),
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Nanos, event: E) {
        match self {
            EngineQueue::Legacy(q) => q.push(time, event),
            EngineQueue::Wheel(q) => q.push(time, event),
        }
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        match self {
            EngineQueue::Legacy(q) => q.pop(),
            EngineQueue::Wheel(q) => q.pop(),
        }
    }

    /// Pops the earliest event only if it is due at or before `t_end`.
    pub fn pop_due(&mut self, t_end: Nanos) -> Option<(Nanos, E)> {
        match self {
            EngineQueue::Legacy(q) => q.pop_due(t_end),
            EngineQueue::Wheel(q) => q.pop_due(t_end),
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        match self {
            EngineQueue::Legacy(q) => q.peek_time(),
            EngineQueue::Wheel(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            EngineQueue::Legacy(q) => q.len(),
            EngineQueue::Wheel(q) => q.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), "c");
        q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Nanos(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(Nanos(7), ());
        assert_eq!(q.peek_time(), Some(Nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop_due(Nanos(5)), None);
        assert_eq!(q.pop_due(Nanos(10)), Some((Nanos(10), "a"))); // inclusive
        assert_eq!(q.pop_due(Nanos(15)), None);
        assert_eq!(q.pop_due(Nanos(25)), Some((Nanos(20), "b")));
        assert_eq!(q.pop_due(Nanos(u64::MAX)), None); // empty queue
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), 1);
        q.push(Nanos(50), 0);
        assert_eq!(q.pop(), Some((Nanos(50), 0)));
        q.push(Nanos(75), 2);
        assert_eq!(q.pop(), Some((Nanos(75), 2)));
        assert_eq!(q.pop(), Some((Nanos(100), 1)));
    }

    #[test]
    fn calendar_pops_in_time_order_across_buckets() {
        let mut q = CalendarQueue::new();
        // One rotation is 1024 × 16.384 µs ≈ 16.8 ms; cover current
        // bucket, near buckets, and overflow in one go.
        q.push(Nanos(30_000_000), "overflow");
        q.push(Nanos(100), "current");
        q.push(Nanos(20_000), "near");
        q.push(Nanos(1_000_000), "far-bucket");
        assert_eq!(q.pop(), Some((Nanos(100), "current")));
        assert_eq!(q.pop(), Some((Nanos(20_000), "near")));
        assert_eq!(q.pop(), Some((Nanos(1_000_000), "far-bucket")));
        assert_eq!(q.pop(), Some((Nanos(30_000_000), "overflow")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_ties_break_in_push_order_across_homes() {
        // Same timestamp, some entries pushed before the cursor reached
        // their bucket (unsorted bucket) and some after (sorted current).
        let mut q = CalendarQueue::new();
        for i in 0..5 {
            q.push(Nanos(50_000), i);
        }
        q.push(Nanos(10), -1);
        assert_eq!(q.pop(), Some((Nanos(10), -1)));
        for i in 5..10 {
            q.push(Nanos(50_000), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((Nanos(50_000), i)));
        }
    }

    #[test]
    fn calendar_handles_past_pushes_and_u64_boundary() {
        let mut q = CalendarQueue::new();
        q.push(Nanos(5_000_000), "late");
        assert_eq!(q.pop(), Some((Nanos(5_000_000), "late")));
        // Cursor is now deep into the calendar; push into the past.
        q.push(Nanos(7), "past");
        q.push(Nanos(u64::MAX), "max");
        q.push(Nanos(u64::MAX - 1), "near-max");
        assert_eq!(q.pop(), Some((Nanos(7), "past")));
        assert_eq!(q.peek_time(), Some(Nanos(u64::MAX - 1)));
        assert_eq!(q.pop(), Some((Nanos(u64::MAX - 1), "near-max")));
        assert_eq!(q.pop(), Some((Nanos(u64::MAX), "max")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn calendar_pop_due_matches_legacy_contract() {
        let mut q = CalendarQueue::new();
        q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop_due(Nanos(5)), None);
        assert_eq!(q.pop_due(Nanos(10)), Some((Nanos(10), "a"))); // inclusive
        assert_eq!(q.pop_due(Nanos(15)), None);
        assert_eq!(q.pop_due(Nanos(25)), Some((Nanos(20), "b")));
        assert_eq!(q.pop_due(Nanos(u64::MAX)), None); // empty queue
    }

    #[test]
    fn engine_queue_dispatches_both_ways() {
        for engine in [EngineChoice::Legacy, EngineChoice::Wheel] {
            let mut q = EngineQueue::new(engine);
            q.push(Nanos(2), "b");
            q.push(Nanos(1), "a");
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(Nanos(1)));
            assert_eq!(q.pop(), Some((Nanos(1), "a")));
            assert_eq!(q.pop_due(Nanos(1)), None);
            assert_eq!(q.pop_due(Nanos(2)), Some((Nanos(2), "b")));
            assert!(q.is_empty());
        }
    }

    /// Differential property: under any interleaving of pushes and pops —
    /// same-timestamp bursts, u64-boundary times, past pushes — the wheel
    /// pops the exact `(timestamp, FIFO-order)` sequence the legacy heap
    /// does.
    mod differential {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Push(u64),
            Pop,
            PopDue(u64),
        }

        /// Times drawn from regimes that stress every queue home: dense
        /// near-horizon, bucket boundaries, beyond-rotation overflow,
        /// u64-boundary timestamps, and a fixed burst magnet for
        /// same-timestamp FIFO ordering.
        fn time_from(tsel: u8, raw: u64) -> u64 {
            match tsel {
                0 => raw % 2_000_000,
                1 => ((raw % 200) << 14).saturating_sub(1),
                2 => (raw % 200) << 14,
                3 => 20_000_000 + raw % 80_000_000,
                4 => u64::MAX - (raw % 3),
                _ => 65_536,
            }
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            (0u8..7, 0u8..6, 0u64..u64::MAX).prop_map(|(sel, tsel, raw)| match sel {
                0..=3 => Op::Push(time_from(tsel, raw)),
                4..=5 => Op::Pop,
                _ => Op::PopDue(time_from(tsel, raw)),
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]
            #[test]
            fn wheel_matches_legacy_pop_sequence(ops in proptest::collection::vec(op_strategy(), 1..200)) {
                let mut legacy = EventQueue::new();
                let mut wheel = CalendarQueue::new();
                let mut id = 0u32;
                for op in &ops {
                    match *op {
                        Op::Push(t) => {
                            legacy.push(Nanos(t), id);
                            wheel.push(Nanos(t), id);
                            id += 1;
                        }
                        Op::Pop => {
                            prop_assert_eq!(legacy.pop(), wheel.pop());
                        }
                        Op::PopDue(t) => {
                            prop_assert_eq!(legacy.pop_due(Nanos(t)), wheel.pop_due(Nanos(t)));
                        }
                    }
                    prop_assert_eq!(legacy.len(), wheel.len());
                    prop_assert_eq!(legacy.peek_time(), wheel.peek_time());
                }
                // Drain both to the end: full sequences must agree.
                loop {
                    let (a, b) = (legacy.pop(), wheel.pop());
                    prop_assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
