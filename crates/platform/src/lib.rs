//! # concordia-platform
//!
//! Discrete-event simulator of the compute platform the paper runs on: a
//! pool of CPU cores executing vRAN worker threads next to best-effort
//! workloads under a non-real-time OS.
//!
//! * [`events`] — deterministic event queue.
//! * [`faults`] — seed-deterministic fault injection (core loss/stall,
//!   accelerator outage/timeout, predictor bias, storms, traffic surges).
//! * [`oslat`] — Linux wake-latency model (Fig. 10 shapes).
//! * [`cache`] — LLC interference model + modeled perf counters (Fig. 9).
//! * [`workloads`] — Redis/Nginx/TPCC/MLPerf/Mix best-effort models
//!   (Fig. 8 beneficiaries and §2.3 interference sources).
//! * [`sched_api`] — the [`PoolScheduler`] decision interface.
//! * [`pool`] — the vRAN pool simulator (workers, EDF queues, DAG
//!   execution, rotation, metrics).
//! * [`accel_state`] — FPGA offload engine state (§7).
//! * [`metrics`] — latency/reliability/reclaimed-CPU accounting.
//! * [`trace`] — microsecond-granularity ring-buffer span recorder +
//!   Chrome-trace/snapshot exporters (the observability spine).

pub mod accel_state;
pub mod arch;
pub mod cache;
pub mod events;
pub mod faults;
pub mod metrics;
pub mod oslat;
pub mod pool;
pub mod sched_api;
pub mod trace;
pub mod workloads;

pub use arch::PoolArchChoice;
pub use cache::{CacheModel, CounterAccumulator, CounterDeltas};
pub use faults::{FaultKind, FaultPlan, FaultSpec, FaultTimeline, FaultWindow};
pub use metrics::{MetricsSummary, PoolMetrics, SlotLatencyRecorder, SlotOutcome};
pub use oslat::OsLatencyModel;
pub use pool::{Observation, PoolConfig, ScheduledDag, VranPool};
pub use sched_api::{
    DagProgress, DedicatedScheduler, PoolArchitecture, PoolScheduler, PoolView, ReadyTask,
};
pub use trace::{
    export_chrome_trace, export_snapshots, TraceConfig, TraceEvent, TraceRecord, TraceRecorder,
    TraceSummary, WindowSnapshot,
};
pub use workloads::{MixSchedule, WorkloadKind, WorkloadProfile};
