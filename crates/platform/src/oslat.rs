//! OS scheduling (wake-up) latency model.
//!
//! §2.3: "The Linux kernel can introduce latencies that … vary from tens of
//! microseconds to tens of milliseconds … parts of the kernel are
//! non-preemptible (even with real-time patches). Therefore, the high
//! priority vRAN worker threads can be delayed from reclaiming a CPU core
//! once they yield."
//!
//! Fig. 10 (a `runqlat` histogram) shows the shape this module reproduces:
//! in isolation almost all wakes land in the 0–7 µs buckets with a thin
//! tail to 32–63 µs; with a collocated workload (Redis) mass appears in
//! the 64–255 µs buckets because the yielded core may be held by a kernel
//! thread in a non-preemptible section, queued interrupts, or RCU work.

use concordia_ran::time::Nanos;
use concordia_stats::rng::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the wake-latency mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct OsLatencyModel {
    /// Probability of a fast wake (scheduler IPI, idle core): 1–4 µs.
    pub fast_prob: f64,
    /// Probability of a medium wake (runqueue contention): 4–16 µs.
    pub medium_prob: f64,
    /// Baseline probability of a kernel-stall wake (non-preemptible
    /// section): 64–255 µs, in isolation.
    pub stall_prob_isolated: f64,
    /// Additional stall probability per unit of best-effort cache/kernel
    /// pressure (collocated workloads issue syscalls and interrupts).
    pub stall_prob_per_pressure: f64,
    /// Baseline probability of an *extreme* hold-off (long non-preemptible
    /// kernel path, §2.3: "tens of microseconds to tens of milliseconds"):
    /// 0.3–6 ms.
    pub extreme_prob_isolated: f64,
    /// Additional extreme-hold-off probability per unit of pressure
    /// (syscall-heavy collocated workloads drive the kernel into long
    /// non-preemptible sections far more often).
    pub extreme_prob_per_pressure: f64,
}

impl Default for OsLatencyModel {
    fn default() -> Self {
        OsLatencyModel {
            fast_prob: 0.86,
            medium_prob: 0.10,
            stall_prob_isolated: 0.0008,
            stall_prob_per_pressure: 0.004,
            extreme_prob_isolated: 0.000_002,
            extreme_prob_per_pressure: 0.000_25,
        }
    }
}

impl OsLatencyModel {
    /// Samples the latency between signalling a yielded worker and the
    /// worker actually running, under the given best-effort `pressure`
    /// (0 = isolated vRAN).
    pub fn sample_wake(&self, pressure: f64, rng: &mut Rng) -> Nanos {
        let stall_p = self.stall_prob_isolated + self.stall_prob_per_pressure * pressure;
        let extreme_p = self.extreme_prob_isolated + self.extreme_prob_per_pressure * pressure;
        let u = rng.f64();
        let us = if u < extreme_p {
            // Long non-preemptible kernel path: 0.3-6 ms.
            rng.pareto(300.0, 1.6).min(6_000.0)
        } else if u < extreme_p + stall_p {
            // Non-preemptible kernel section: 64–255 µs, Pareto-shaped.
            rng.pareto(64.0, 2.5).min(255.0)
        } else if u < extreme_p + stall_p + self.fast_prob {
            1.0 + rng.f64() * 3.0
        } else if u < extreme_p + stall_p + self.fast_prob + self.medium_prob {
            4.0 + rng.f64() * 12.0
        } else {
            16.0 + rng.f64() * 48.0
        };
        Nanos::from_micros_f64(us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concordia_stats::hist::Log2Histogram;

    fn histogram(pressure: f64, n: usize, seed: u64) -> Log2Histogram {
        let m = OsLatencyModel::default();
        let mut rng = Rng::new(seed);
        let mut h = Log2Histogram::new();
        for _ in 0..n {
            h.record(m.sample_wake(pressure, &mut rng).as_micros_f64() as u64);
        }
        h
    }

    #[test]
    fn isolated_wakes_mostly_fast() {
        let h = histogram(0.0, 100_000, 1);
        // >= 85% in the 0-3 µs buckets (bucket 0 and 1).
        let fast: u64 = h.counts().iter().take(2).sum();
        assert!(fast as f64 / h.total() as f64 > 0.80, "fast {fast}");
        // Almost nothing at or above 64 µs.
        let tail = h.count_at_or_above(64) as f64 / h.total() as f64;
        assert!(tail < 0.002, "isolated tail {tail}");
    }

    #[test]
    fn colocation_grows_the_64us_tail() {
        // The Fig. 10b effect: with a Redis-like pressure, a visible share
        // of wakes lands in 64-255 µs.
        let iso = histogram(0.0, 200_000, 2);
        let loaded = histogram(1.5, 200_000, 3);
        let iso_tail = iso.count_at_or_above(64) as f64 / iso.total() as f64;
        let loaded_tail = loaded.count_at_or_above(64) as f64 / loaded.total() as f64;
        assert!(
            loaded_tail > 4.0 * iso_tail,
            "iso {iso_tail} loaded {loaded_tail}"
        );
        assert!(
            loaded_tail > 0.003 && loaded_tail < 0.05,
            "loaded {loaded_tail}"
        );
    }

    #[test]
    fn latencies_bounded_to_6ms() {
        let m = OsLatencyModel::default();
        let mut rng = Rng::new(4);
        let mut extremes = 0u64;
        for _ in 0..1_000_000 {
            let l = m.sample_wake(3.0, &mut rng);
            assert!(l <= Nanos::from_micros(6_000));
            assert!(l >= Nanos::from_micros(1));
            if l > Nanos::from_micros(255) {
                extremes += 1;
            }
        }
        // ~7.5e-4 extreme probability at pressure 3.
        assert!(
            (300..=1_800).contains(&extremes),
            "extreme hold-offs {extremes}"
        );
    }

    #[test]
    fn extreme_holdoffs_essentially_absent_in_isolation() {
        let m = OsLatencyModel::default();
        let mut rng = Rng::new(6);
        let extremes = (0..500_000)
            .filter(|_| m.sample_wake(0.0, &mut rng) > Nanos::from_micros(255))
            .count();
        assert!(extremes < 10, "isolated extremes {extremes}");
    }

    #[test]
    fn deterministic_per_seed() {
        let m = OsLatencyModel::default();
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..1000 {
            assert_eq!(m.sample_wake(0.7, &mut a), m.sample_wake(0.7, &mut b));
        }
    }
}
