//! Best-effort collocated workload models.
//!
//! §6 collocates the vRAN with Redis (8 containers), Nginx (5 containers),
//! a MySQL TPCC benchmark, MLPerf ResNet-50 training, and a randomized Mix
//! of all of them. For the reproduction each workload is characterized by:
//!
//! * an **ideal throughput per core-second** (what it achieves on a core it
//!   fully owns — the "No vRAN" bars of Fig. 8b–d);
//! * a **cache intensity** — the LLC pressure it exerts on the vRAN (§2.3);
//! * a **preemption sensitivity** — how much throughput it loses per
//!   vRAN-induced eviction (cold caches, dropped connections, stalled
//!   transactions), which produces the Fig. 8 gap between the reclaimed
//!   core share and the achieved throughput share.

use concordia_ran::time::Nanos;
use serde::{Deserialize, Serialize};

/// The collocated workload types of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// 8 Redis containers saturated with GET/SET (ops/s).
    Redis,
    /// 5 Nginx containers serving 612 B files (requests/s).
    Nginx,
    /// 1 MySQL container running TPCC (transactions/s).
    Tpcc,
    /// MLPerf ResNet-50 training (samples/s).
    MlPerf,
}

impl WorkloadKind {
    /// All workload kinds.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::Redis,
        WorkloadKind::Nginx,
        WorkloadKind::Tpcc,
        WorkloadKind::MlPerf,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Redis => "redis",
            WorkloadKind::Nginx => "nginx",
            WorkloadKind::Tpcc => "tpcc",
            WorkloadKind::MlPerf => "mlperf",
        }
    }

    /// Characterization of the workload.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            // Redis: memory-resident key-value store — very cache hungry,
            // moderately eviction sensitive. ~700k ops/s per core.
            WorkloadKind::Redis => WorkloadProfile {
                kind: self,
                ideal_rate_per_core: 700_000.0,
                cache_intensity: 1.3,
                kernel_intensity: 1.6,
                preemption_sensitivity: 1.0,
                unit: "ops/s",
            },
            // Nginx: small static files, kernel-heavy but stateless per
            // request — least eviction sensitive.
            WorkloadKind::Nginx => WorkloadProfile {
                kind: self,
                ideal_rate_per_core: 7_000.0,
                cache_intensity: 0.9,
                kernel_intensity: 1.5,
                preemption_sensitivity: 0.55,
                unit: "req/s",
            },
            // TPCC/MySQL: lock-holding transactions — most eviction
            // sensitive (a preempted transaction blocks others).
            WorkloadKind::Tpcc => WorkloadProfile {
                kind: self,
                ideal_rate_per_core: 350.0,
                cache_intensity: 1.1,
                kernel_intensity: 1.0,
                preemption_sensitivity: 1.5,
                unit: "txn/s",
            },
            // MLPerf training: long compute bursts, large working set.
            WorkloadKind::MlPerf => WorkloadProfile {
                kind: self,
                ideal_rate_per_core: 95.0,
                cache_intensity: 1.5,
                kernel_intensity: 0.2,
                preemption_sensitivity: 1.2,
                unit: "samples/s",
            },
        }
    }
}

/// Static characterization of one best-effort workload.
///
/// Serialize-only: the `&'static str` unit label cannot be deserialized
/// from owned data, and nothing reconstructs profiles from reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkloadProfile {
    /// Which workload this profiles.
    pub kind: WorkloadKind,
    /// Throughput on a fully owned core (units per core-second).
    pub ideal_rate_per_core: f64,
    /// LLC pressure exerted on collocated vRAN tasks.
    pub cache_intensity: f64,
    /// Kernel-activity pressure (syscalls, interrupts, softirq storms):
    /// drives OS wake latency and storm frequency. Network-saturating
    /// workloads (Redis/Nginx on a 40G link) are kernel-heavy; MLPerf
    /// training is almost pure userspace compute — which is why the paper
    /// finds MLPerf the mildest interferer for vanilla FlexRAN (Fig. 11).
    pub kernel_intensity: f64,
    /// Fractional throughput loss per (eviction per core-millisecond) of
    /// granted time (scaled linearly, saturating at 90 % loss). Calibrated
    /// so that a Concordia-like eviction rate (~0.1 per core-ms: rotation
    /// every 2 ms plus occasional slot-envelope growth) yields the Fig. 8
    /// achieved-throughput ordering and magnitudes.
    pub preemption_sensitivity: f64,
    /// Human-readable throughput unit.
    pub unit: &'static str,
}

impl WorkloadProfile {
    /// Ideal throughput over `cores` fully owned cores for `duration` —
    /// the "No vRAN (N cores)" reference bars of Fig. 8.
    pub fn ideal_ops(&self, cores: u32, duration: Nanos) -> f64 {
        self.ideal_rate_per_core * cores as f64 * duration.as_nanos() as f64 / 1e9
    }

    /// Achieved throughput given the core-time actually granted to
    /// best-effort work and the vRAN-induced eviction count.
    ///
    /// `granted_core_time` is the summed released-core time; `evictions`
    /// is the number of times the vRAN took a core back.
    pub fn achieved_ops(&self, granted_core_time: Nanos, evictions: u64) -> f64 {
        let core_secs = granted_core_time.as_nanos() as f64 / 1e9;
        if core_secs <= 0.0 {
            return 0.0;
        }
        // Evictions per core-millisecond of granted time.
        let evict_rate = evictions as f64 / (core_secs * 1000.0);
        let loss = (self.preemption_sensitivity * evict_rate).min(0.9);
        self.ideal_rate_per_core * core_secs * (1.0 - loss)
    }

    /// Fraction of the ideal achieved (the Fig. 8 normalized readout).
    pub fn achieved_fraction(
        &self,
        cores: u32,
        duration: Nanos,
        granted_core_time: Nanos,
        evictions: u64,
    ) -> f64 {
        let ideal = self.ideal_ops(cores, duration);
        if ideal <= 0.0 {
            0.0
        } else {
            self.achieved_ops(granted_core_time, evictions) / ideal
        }
    }
}

/// A randomized on/off schedule for the Mix workload: each component turns
/// on and off at random intervals of 10–70 s (§6).
#[derive(Debug, Clone)]
pub struct MixSchedule {
    /// (workload, on/off toggle times) — at even indices the workload turns
    /// on, at odd indices off.
    segments: Vec<(WorkloadKind, Vec<Nanos>)>,
}

impl MixSchedule {
    /// Generates a schedule covering `duration`.
    pub fn generate(duration: Nanos, rng: &mut concordia_stats::rng::Rng) -> Self {
        let segments = WorkloadKind::ALL
            .iter()
            .map(|&kind| {
                let mut toggles = Vec::new();
                let mut t = Nanos::from_secs(0);
                // Random initial phase so components are decorrelated.
                t += Nanos::from_millis(rng.range_u64(0, 10_000));
                while t < duration {
                    toggles.push(t);
                    t += Nanos::from_secs(rng.range_u64(10, 70));
                }
                (kind, toggles)
            })
            .collect();
        MixSchedule { segments }
    }

    /// The workloads active at time `t` (a component is active between its
    /// even-indexed and the following odd-indexed toggle).
    pub fn active_at(&self, t: Nanos) -> Vec<WorkloadKind> {
        self.segments
            .iter()
            .filter(|(_, toggles)| {
                let crossed = toggles.iter().filter(|&&x| x <= t).count();
                crossed % 2 == 1
            })
            .map(|(k, _)| *k)
            .collect()
    }

    /// Aggregate (cache, kernel) pressure of the active components at `t`.
    pub fn pressure_at(&self, t: Nanos) -> (f64, f64) {
        self.active_at(t)
            .iter()
            .map(|k| {
                let p = k.profile();
                (p.cache_intensity, p.kernel_intensity)
            })
            .fold((0.0, 0.0), |(a, b), (c, k)| (a + c, b + k))
    }

    /// All toggle times, sorted — the instants at which pressure changes.
    pub fn toggle_times(&self) -> Vec<Nanos> {
        let mut ts: Vec<Nanos> = self
            .segments
            .iter()
            .flat_map(|(_, t)| t.iter().copied())
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concordia_stats::rng::Rng;

    #[test]
    fn profiles_are_distinct_and_positive() {
        for k in WorkloadKind::ALL {
            let p = k.profile();
            assert!(p.ideal_rate_per_core > 0.0);
            assert!(p.cache_intensity > 0.0);
            assert!((0.0..2.0).contains(&p.preemption_sensitivity));
        }
        // TPCC must be the most preemption-sensitive, Nginx the least —
        // that ordering produces the Fig. 8 ordering (Nginx 82% > Redis
        // 77% > TPCC 72% of ideal at equal reclaimed share).
        let s = |k: WorkloadKind| k.profile().preemption_sensitivity;
        assert!(s(WorkloadKind::Tpcc) > s(WorkloadKind::Redis));
        assert!(s(WorkloadKind::Redis) > s(WorkloadKind::Nginx));
    }

    #[test]
    fn ideal_ops_scale_with_cores_and_time() {
        let p = WorkloadKind::Redis.profile();
        let one = p.ideal_ops(1, Nanos::from_secs(1));
        assert_eq!(p.ideal_ops(8, Nanos::from_secs(1)), 8.0 * one);
        assert_eq!(p.ideal_ops(1, Nanos::from_secs(10)), 10.0 * one);
    }

    #[test]
    fn achieved_fraction_matches_fig8_magnitudes() {
        // 83.3% of 12 cores reclaimed for 10s with a Concordia-like
        // eviction rate (~0.1 per core-ms): TPCC ≈ 72% of ideal, Redis
        // ≈ 77%, Nginx ≈ 82% (Fig. 8b-d at low cell load).
        let duration = Nanos::from_secs(10);
        let granted = Nanos::from_secs(100); // 10 of 12 core-seconds per s
        let core_ms = 100_000.0;
        let evictions = (0.1 * core_ms) as u64;
        let frac = |k: WorkloadKind| {
            k.profile()
                .achieved_fraction(12, duration, granted, evictions)
        };
        let tpcc = frac(WorkloadKind::Tpcc);
        let redis = frac(WorkloadKind::Redis);
        let nginx = frac(WorkloadKind::Nginx);
        assert!((0.62..0.78).contains(&tpcc), "tpcc {tpcc}");
        assert!((0.68..0.82).contains(&redis), "redis {redis}");
        assert!((0.74..0.88).contains(&nginx), "nginx {nginx}");
        assert!(nginx > redis && redis > tpcc);
    }

    #[test]
    fn zero_granted_time_means_zero_ops() {
        let p = WorkloadKind::Tpcc.profile();
        assert_eq!(p.achieved_ops(Nanos::ZERO, 0), 0.0);
        assert_eq!(
            p.achieved_fraction(8, Nanos::from_secs(1), Nanos::ZERO, 0),
            0.0
        );
    }

    #[test]
    fn extreme_eviction_rate_saturates_at_90pct_loss() {
        let p = WorkloadKind::Tpcc.profile();
        let granted = Nanos::from_secs(1);
        let ops = p.achieved_ops(granted, 10_000_000);
        assert!((ops - p.ideal_rate_per_core * 0.1).abs() < 1e-6);
    }

    #[test]
    fn mix_schedule_toggles_components() {
        let mut rng = Rng::new(9);
        let dur = Nanos::from_secs(300);
        let mix = MixSchedule::generate(dur, &mut rng);
        // Pressure must actually vary over time.
        let samples: Vec<f64> = (0..300)
            .map(|s| mix.pressure_at(Nanos::from_secs(s)).0)
            .collect();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "pressure must vary: {min}..{max}");
        assert!(
            max <= WorkloadKind::ALL
                .iter()
                .map(|k| k.profile().cache_intensity)
                .sum::<f64>()
                + 1e-9
        );
        // Toggle times sorted and within duration window + one interval.
        let ts = mix.toggle_times();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mix_active_at_respects_toggle_parity() {
        let mix = MixSchedule {
            segments: vec![(
                WorkloadKind::Redis,
                vec![Nanos::from_secs(10), Nanos::from_secs(20)],
            )],
        };
        assert!(mix.active_at(Nanos::from_secs(5)).is_empty());
        assert_eq!(
            mix.active_at(Nanos::from_secs(15)),
            vec![WorkloadKind::Redis]
        );
        assert!(mix.active_at(Nanos::from_secs(25)).is_empty());
    }
}
