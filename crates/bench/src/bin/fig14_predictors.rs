//! Fig. 14 — WCET prediction accuracy of different models for the LDPC
//! decoding task (§6.4).
//!
//! Paper claims reproduced here:
//! * per-task deadline misses (runtime exceeding the predicted WCET):
//!   linear regression misses orders of magnitude more often than gradient
//!   boosting or the quantile decision tree, which are comparable
//!   (Fig. 14a);
//! * the quantile decision tree has the smallest average WCET prediction
//!   error on met deadlines (paper: ~43 µs), i.e. it is the least
//!   pessimistic of the accurate models (Fig. 14b);
//! * the full-DAG reliability under the Concordia scheduler is ~5 nines
//!   even though per-task prediction accuracy is lower, because the 20 µs
//!   re-scheduling compensates for mispredictions (the "Full DAG Quantile
//!   DT" bars).
//!
//! Scenarios: {1, 2} FDD cells × {isolated, +redis, +tpcc} on 4 cores.

use concordia_bench::{banner, write_json, RunLength};
use concordia_core::profile::random_workload;
use concordia_core::profile::{profile, train_predictor};
use concordia_core::{run_experiment, Colocation, PredictorChoice, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::cost::CostModel;
use concordia_ran::features::extract;
use concordia_ran::numerology::SlotDirection;
use concordia_ran::task::TaskKind;
use concordia_ran::{CellConfig, Nanos};
use concordia_stats::rng::Rng;
use serde::Serialize;

#[derive(Serialize)]
struct PredictorScore {
    model: String,
    scenario: String,
    miss_pct: f64,
    avg_error_us: f64,
}

#[derive(Serialize)]
struct FullDagScore {
    scenario: String,
    deadline_miss_pct: f64,
}

/// Evaluates a model's per-task miss rate and average over-prediction on
/// fresh samples with the scenario's interference factor, feeding
/// observations online as the paper's adapted baselines do.
fn evaluate(
    model: &mut dyn concordia_predictor::WcetPredictor,
    cell: &CellConfig,
    cost: &CostModel,
    pressure: f64,
    samples: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = Rng::new(seed);
    let mut misses = 0u64;
    let mut met = 0u64;
    let mut err_sum = 0.0;
    let mut produced = 0usize;
    // The paper measures steady-state 5-minute runs with online adaptation
    // active throughout; the first fifth here is warm-up (observed but not
    // scored) so cold leaf buffers don't dominate short runs.
    let warmup = samples / 5;
    while produced < samples {
        let wl = random_workload(cell, SlotDirection::Uplink, &mut rng);
        let dag = concordia_ran::dag::build_uplink_dag(cell, 0, 0, concordia_ran::Nanos::ZERO, &wl);
        for node in &dag.nodes {
            if node.task.kind != TaskKind::LdpcDecode {
                continue;
            }
            let mut p = node.task.params;
            p.pool_cores = 4;
            // Interference factor mirrors the cache model's cold-ish pool.
            let f = if pressure > 0.0 {
                1.0 + pressure * 0.18 * rng.lognormal(0.0, 0.35)
            } else {
                1.0
            };
            let runtime = cost
                .sample_runtime(TaskKind::LdpcDecode, &p, f, &mut rng)
                .as_micros_f64();
            let x = extract(&p);
            let pred = model.predict_us(&x);
            if produced >= warmup {
                if runtime > pred {
                    misses += 1;
                } else {
                    met += 1;
                    err_sum += pred - runtime;
                }
            }
            model.observe(&x, runtime);
            produced += 1;
        }
    }
    (
        misses as f64 / (misses + met) as f64 * 100.0,
        if met > 0 { err_sum / met as f64 } else { 0.0 },
    )
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 14 (WCET prediction accuracy, LDPC decode)",
        "linreg misses >> gbt ~= qdt; qdt has the smallest avg error; full-DAG reliability ~5 nines",
    );

    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let dataset = profile(&cell, &cost, len.profiling_slots() * 2, 4, seed);
    let decode = dataset.samples(TaskKind::LdpcDecode);
    println!("\noffline profiling: {} decode samples", decode.len());

    let eval_samples = match len {
        concordia_bench::RunLength::Quick => 20_000,
        concordia_bench::RunLength::Standard => 80_000,
        concordia_bench::RunLength::Long => 300_000,
    };

    let scenarios: Vec<(String, f64)> = vec![
        ("FD isolated".into(), 0.0),
        (
            "FD + redis".into(),
            WorkloadKind::Redis.profile().cache_intensity,
        ),
        (
            "FD + tpcc".into(),
            WorkloadKind::Tpcc.profile().cache_intensity,
        ),
    ];
    let models = [
        PredictorChoice::LinearRegression,
        PredictorChoice::GradientBoosting,
        PredictorChoice::QuantileDt,
    ];

    let mut scores = Vec::new();
    println!(
        "\nFig. 14a/b — per-task misses and avg error on met deadlines:\n{:<20} {:<14} {:>10} {:>14}",
        "model", "scenario", "miss %", "avg err (us)"
    );
    for m in models {
        for (scen, pressure) in &scenarios {
            let mut model = train_predictor(TaskKind::LdpcDecode, decode, m, &cost);
            let (miss, err) = evaluate(
                model.as_mut(),
                &cell,
                &cost,
                *pressure,
                eval_samples,
                seed ^ 0xF14,
            );
            println!("{:<20} {:<14} {:>10.4} {:>14.1}", m.name(), scen, miss, err);
            scores.push(PredictorScore {
                model: m.name().into(),
                scenario: scen.clone(),
                miss_pct: miss,
                avg_error_us: err,
            });
        }
        println!();
    }

    // Full-DAG reliability with the QDT under the Concordia scheduler.
    println!("Full DAG Quantile DT — deadline misses with 20us re-scheduling:");
    let mut full = Vec::new();
    for (n_cells, colo, scen) in [
        (1u32, Colocation::Isolated, "1 cell - FD"),
        (2, Colocation::Isolated, "2 cells - FD"),
        (
            1,
            Colocation::Single(WorkloadKind::Redis),
            "1 cell - FD & redis",
        ),
        (
            2,
            Colocation::Single(WorkloadKind::Redis),
            "2 cells - FD & redis",
        ),
        (
            1,
            Colocation::Single(WorkloadKind::Tpcc),
            "1 cell - FD & tpcc",
        ),
        (
            2,
            Colocation::Single(WorkloadKind::Tpcc),
            "2 cells - FD & tpcc",
        ),
    ] {
        let mut cfg = SimConfig::paper_20mhz();
        cfg.n_cells = n_cells;
        cfg.cores = 4;
        cfg.duration = Nanos::from_secs(len.online_secs());
        cfg.profiling_slots = len.profiling_slots();
        cfg.colocation = colo;
        cfg.seed = seed;
        let r = run_experiment(cfg);
        let miss_pct = (1.0 - r.metrics.reliability) * 100.0;
        println!("  {scen:<22} {miss_pct:.5}% of DAGs");
        full.push(FullDagScore {
            scenario: scen.into(),
            deadline_miss_pct: miss_pct,
        });
    }

    write_json(
        "fig14_predictors",
        &serde_json::json!({"per_task": scores, "full_dag": full}),
    );
}
