//! Fig. 8 — CPU cores reclaimed by Concordia and the throughput of the
//! collocated workloads across cell traffic loads (§6.1).
//!
//! Paper claims reproduced here:
//! * Fig. 8a: Concordia reclaims > 70 % of CPU at low loads for both the
//!   20 MHz and 100 MHz configurations, dropping toward 38 % / 0 % at the
//!   max allowed average load — always below the idle-cycle upper bound;
//! * Fig. 8b–d: at low load the collocated workloads achieve a large
//!   fraction of their dedicated-server ideal (paper, 100 MHz low load:
//!   TPCC 72 %, Redis 76.6 %, Nginx 82.2 %, MLPerf ~78 %);
//! * 99.999 % reliability holds throughout.

use concordia_bench::{banner, pct, write_json, RunLength};
use concordia_core::{run_experiment, Colocation, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::Nanos;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    config: String,
    load: f64,
    reclaimed_pct: f64,
    upper_bound_pct: f64,
    reliability: f64,
}

#[derive(Serialize)]
struct WorkloadPoint {
    config: String,
    workload: String,
    load: f64,
    fraction_of_ideal: f64,
    achieved_per_sec: f64,
    reliability: f64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 8 (reclaimed CPU and collocated workload throughput vs load)",
        ">70% reclaimed at low load; TPCC 72% / Redis 77% / Nginx 82% of ideal at low load (100MHz)",
    );

    let loads = [0.05, 0.25, 0.5, 0.75, 1.0];
    let dur = Nanos::from_secs(len.online_secs());

    let configs = [
        ("100MHz", SimConfig::paper_100mhz()),
        ("20MHz", SimConfig::paper_20mhz()),
    ];

    // ---- Fig. 8a: reclaimed CPU vs load, against the idle upper bound ----
    println!("\nFig. 8a — reclaimed CPU vs cell traffic load:");
    println!(
        "{:<8} {:>6} {:>12} {:>14} {:>12}",
        "config", "load", "reclaimed", "upper bound", "reliability"
    );
    let mut sweep = Vec::new();
    for (name, template) in &configs {
        for &load in &loads {
            let mut cfg = template.clone();
            cfg.duration = dur;
            cfg.profiling_slots = len.profiling_slots();
            cfg.load = load;
            cfg.seed = seed;
            cfg.colocation = Colocation::Single(WorkloadKind::Redis);
            let r = run_experiment(cfg);
            // Upper bound: every idle cycle reclaimed = 1 - pool utilization.
            let ub = 1.0 - r.metrics.pool_utilization;
            println!(
                "{name:<8} {:>5.0}% {:>12} {:>14} {:>12.6}",
                load * 100.0,
                pct(r.metrics.reclaimed_fraction),
                pct(ub),
                r.metrics.reliability
            );
            sweep.push(SweepPoint {
                config: name.to_string(),
                load,
                reclaimed_pct: r.metrics.reclaimed_fraction * 100.0,
                upper_bound_pct: ub * 100.0,
                reliability: r.metrics.reliability,
            });
        }
        println!();
    }

    // ---- Fig. 8b-d: per-workload achieved throughput vs load ----
    println!("Fig. 8b-d — collocated workload throughput (fraction of the no-vRAN ideal):");
    println!(
        "{:<8} {:<8} {:>6} {:>14} {:>16} {:>12}",
        "config", "workload", "load", "frac of ideal", "achieved/s", "reliability"
    );
    let mut wl_points = Vec::new();
    for (name, template) in &configs {
        for kind in WorkloadKind::ALL {
            for &load in &[0.05, 0.5, 1.0] {
                let mut cfg = template.clone();
                cfg.duration = dur;
                cfg.profiling_slots = len.profiling_slots();
                cfg.load = load;
                cfg.seed = seed;
                cfg.colocation = Colocation::Single(kind);
                let r = run_experiment(cfg);
                let w = r.workload.as_ref().expect("single workload report");
                println!(
                    "{name:<8} {:<8} {:>5.0}% {:>14} {:>16.0} {:>12.6}",
                    kind.name(),
                    load * 100.0,
                    pct(w.fraction_of_ideal),
                    w.achieved_ops_per_sec,
                    r.metrics.reliability
                );
                wl_points.push(WorkloadPoint {
                    config: name.to_string(),
                    workload: kind.name().into(),
                    load,
                    fraction_of_ideal: w.fraction_of_ideal,
                    achieved_per_sec: w.achieved_ops_per_sec,
                    reliability: r.metrics.reliability,
                });
            }
        }
        println!();
    }

    write_json(
        "fig08_reclaimed",
        &serde_json::json!({"fig8a": sweep, "fig8bcd": wl_points}),
    );
}
