//! Tables 3 & 4 — the §7 FPGA LDPC-offload extension.
//!
//! Paper claims reproduced here:
//! * Table 3: with LDPC encode/decode on the FPGA, 100 MHz TDD cells at
//!   high traffic need very few CPU cores (paper: 1/3/4 for 1/2/3 cells)
//!   and the utilization of those cores still stays below ~60 %;
//! * Table 4: the average total uplink slot time is ~2.5× the CPU time of
//!   its non-offloaded tasks (the worker blocks waiting for the FPGA), and
//!   ~1.9× for the downlink — idle periods Concordia could reclaim.

use concordia_bench::{banner, pct, write_json, RunLength};
use concordia_core::experiments::find_min_cores;
use concordia_core::{run_experiment, Colocation, SimConfig};
use concordia_ran::accel::FpgaModel;
use concordia_ran::cost::CostModel;
use concordia_ran::dag::{build_downlink_dag, build_uplink_dag, SlotWorkload, UeAlloc};
use concordia_ran::numerology::SlotDirection;
use concordia_ran::{CellConfig, Nanos};
use serde::Serialize;

#[derive(Serialize)]
struct Table3Row {
    cells: u32,
    min_cores: u32,
    avg_cpu_util_pct: f64,
}

#[derive(Serialize)]
struct Table4Row {
    direction: String,
    non_offloaded_us: f64,
    total_slot_us: f64,
    ratio: f64,
}

fn peak_workload(cell: &CellConfig, dir: SlotDirection) -> SlotWorkload {
    // Table 3's cell: 1.6 Gbps DL / 150 Mbps UL per 100 MHz TDD cell.
    let bytes = match dir {
        SlotDirection::Uplink => 47_000u32, // 150 Mbps over the UL slots
        _ => 125_000,                       // 1.6 Gbps over the DL slots
    };
    let n_ues = 8;
    SlotWorkload {
        direction: dir,
        ues: (0..n_ues)
            .map(|_| UeAlloc {
                tb_bytes: bytes / n_ues,
                mcs_index: 24,
                snr_db: 28.0,
                layers: 4,
                prbs: cell.prbs / n_ues,
            })
            .collect(),
    }
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Tables 3/4 (FPGA LDPC offload: pool sizes and slot-time split)",
        "few cores suffice with offload, yet utilization stays <60%; UL total ~2.5x CPU time",
    );

    // ---- Table 4: per-slot time split on one core ----
    let cell = CellConfig::tdd_100mhz();
    let cost = CostModel::new();
    let fpga = FpgaModel::default();
    let mut t4 = Vec::new();
    println!(
        "\nTable 4 — average slot processing on 1 core (µs):\n{:<10} {:>16} {:>14} {:>7}   (paper UL: 515 vs 1414; DL: 196 vs 366)",
        "direction", "non-offloaded", "total w/ FPGA", "ratio"
    );
    for dir in [SlotDirection::Uplink, SlotDirection::Downlink] {
        let wl = peak_workload(&cell, dir);
        let dag = match dir {
            SlotDirection::Uplink => build_uplink_dag(&cell, 0, 0, Nanos::ZERO, &wl),
            _ => build_downlink_dag(&cell, 0, 0, Nanos::ZERO, &wl),
        };
        let mut cpu_us = 0.0;
        let mut fpga_us = 0.0;
        for node in &dag.nodes {
            if node.task.kind.offloadable() {
                cpu_us += fpga.submit_cost().as_micros_f64();
                fpga_us += fpga
                    .service_latency(node.task.kind, node.task.params.n_cbs)
                    .as_micros_f64();
            } else {
                cpu_us += cost
                    .expected_cost(node.task.kind, &node.task.params)
                    .as_micros_f64();
            }
        }
        // On one core the offload wait does not overlap other tasks of the
        // same slot (the paper's single-core measurement).
        let total = cpu_us + fpga_us;
        let name = match dir {
            SlotDirection::Uplink => "uplink",
            _ => "downlink",
        };
        println!(
            "{name:<10} {cpu_us:>16.0} {total:>14.0} {:>7.2}",
            total / cpu_us
        );
        t4.push(Table4Row {
            direction: name.into(),
            non_offloaded_us: cpu_us,
            total_slot_us: total,
            ratio: total / cpu_us,
        });
    }

    // ---- Table 3: minimum cores and utilization with offload ----
    println!(
        "\nTable 3 — min cores and utilization with FPGA offload (100MHz TDD):\n{:<8} {:>10} {:>14}   (paper: 1/58%, 3/47%, 4/59%)",
        "cells", "min cores", "avg CPU util"
    );
    let mut t3 = Vec::new();
    for cells in 1..=3u32 {
        let mut t = SimConfig::paper_100mhz();
        t.n_cells = cells;
        t.fpga = true;
        t.load = 1.0;
        t.peak_provisioning = true;
        t.colocation = Colocation::Isolated;
        t.duration = Nanos::from_secs(len.online_secs().min(5));
        t.profiling_slots = len.profiling_slots() / 2;
        t.seed = seed;
        let (min_cores, _) = find_min_cores(&t, 1, 12, 0.9999).expect("feasible");
        let r = run_experiment(SimConfig {
            cores: min_cores,
            ..t
        });
        println!(
            "{cells:<8} {min_cores:>10} {:>14}",
            pct(r.metrics.pool_utilization)
        );
        t3.push(Table3Row {
            cells,
            min_cores,
            avg_cpu_util_pct: r.metrics.pool_utilization * 100.0,
        });
    }
    println!("\n(under-utilization persists with acceleration: TDD idle gaps +\n offload wait times — the §7 argument for extending Concordia)");

    write_json(
        "table34_fpga",
        &serde_json::json!({"table3": t3, "table4": t4}),
    );
}
