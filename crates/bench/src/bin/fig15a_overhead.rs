//! Fig. 15a — processing overhead of the Concordia scheduler and WCET
//! predictor for a varying number of cells (§6.5).
//!
//! Unlike the simulation-driven figures, this is a *measured* claim about
//! Concordia's own code, so we measure our Rust implementation directly
//! (wall-clock over many iterations; see also the criterion benches in
//! `crates/bench/benches`).
//!
//! Paper claims reproduced here:
//! * both overheads grow linearly with the number of cells;
//! * the scheduler evaluation stays far below its 20 µs budget
//!   (paper: < 2 µs for up to 7 cells);
//! * the per-TTI WCET prediction cost is a tiny fraction of the slot
//!   (paper: 4 µs at 1 cell → 24 µs at 7 cells, < 0.2 % of pool time).

use concordia_bench::{banner, write_json, RunLength};
use concordia_core::profile::{profile, random_workload, train_bank};
use concordia_core::PredictorChoice;
use concordia_platform::sched_api::{DagProgress, PoolScheduler, PoolView};
use concordia_ran::cost::CostModel;
use concordia_ran::features::extract;
use concordia_ran::numerology::SlotDirection;
use concordia_ran::{CellConfig, Nanos};
use concordia_sched::concordia::ConcordiaScheduler;
use concordia_stats::rng::Rng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct OverheadRow {
    cells: u32,
    scheduler_ns: f64,
    predictor_us_per_tti: f64,
    dags_in_view: usize,
    tasks_per_tti: usize,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 15a (measured scheduler and predictor overhead vs #cells)",
        "linear growth; scheduler < 2us; predictor 4us (1 cell) -> 24us (7 cells)",
    );

    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let dataset = profile(&cell, &cost, len.profiling_slots(), 8, seed);
    let bank = train_bank(&dataset, PredictorChoice::QuantileDt, &cost);

    let iters = match len {
        concordia_bench::RunLength::Quick => 2_000,
        concordia_bench::RunLength::Standard => 20_000,
        concordia_bench::RunLength::Long => 100_000,
    };

    let mut rows = Vec::new();
    println!(
        "\n{:>6} {:>16} {:>20} {:>10} {:>10}",
        "cells", "scheduler (ns)", "predictor (us/TTI)", "dags", "tasks/TTI"
    );
    for cells in 1..=7u32 {
        let mut rng = Rng::new(seed + cells as u64);

        // Representative per-TTI state: one UL + one DL DAG per cell.
        let mut dags: Vec<DagProgress> = Vec::new();
        let mut tti_tasks = Vec::new();
        for c in 0..cells {
            for dir in [SlotDirection::Uplink, SlotDirection::Downlink] {
                let wl = random_workload(&cell, dir, &mut rng);
                let dag = concordia_ran::dag::build_dag(&cell, c, 0, Nanos::ZERO, &wl);
                let work = dag.total_work(&cost);
                let cp = dag.critical_path(&cost);
                dags.push(DagProgress {
                    cell: 0,
                    arrival: Nanos::ZERO,
                    deadline: Nanos::from_millis(2),
                    remaining_work: work,
                    remaining_critical_path: cp,
                });
                for node in &dag.nodes {
                    tti_tasks.push(node.task);
                }
            }
        }

        // ---- scheduler tick cost ----
        let mut sched = ConcordiaScheduler::default_paper();
        let view = PoolView {
            now: Nanos::from_micros(100),
            total_cores: 8,
            granted_cores: 4,
            dags: &dags,
            ready_tasks: 4,
            running_tasks: 3,
            oldest_ready_wait: Nanos::from_micros(5),
            recent_utilization: 0.5,
        };
        let t0 = Instant::now();
        let mut sink = 0u64;
        for _ in 0..iters {
            sink = sink.wrapping_add(sched.target_cores(&view) as u64);
        }
        let sched_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        std::hint::black_box(sink);

        // ---- predictor cost per TTI (predict every task of the slot) ----
        let xs: Vec<_> = tti_tasks
            .iter()
            .map(|t| (t.kind, extract(&t.params)))
            .collect();
        let t0 = Instant::now();
        let mut acc = 0.0f64;
        for _ in 0..iters.min(5_000) {
            for (kind, x) in &xs {
                if let Some(p) = bank.predict(*kind, x) {
                    acc += p.as_micros_f64();
                }
            }
        }
        let pred_us = t0.elapsed().as_micros() as f64 / iters.min(5_000) as f64;
        std::hint::black_box(acc);

        println!(
            "{cells:>6} {sched_ns:>16.0} {pred_us:>20.2} {:>10} {:>10}",
            dags.len(),
            xs.len()
        );
        rows.push(OverheadRow {
            cells,
            scheduler_ns: sched_ns,
            predictor_us_per_tti: pred_us,
            dags_in_view: dags.len(),
            tasks_per_tti: xs.len(),
        });
    }

    let s1 = rows[0].scheduler_ns;
    let s7 = rows[6].scheduler_ns;
    println!(
        "\nscheduler: {:.0}ns (1 cell) -> {:.0}ns (7 cells); budget 20us -> {:.2}% used",
        s1,
        s7,
        s7 / 20_000.0 * 100.0
    );
    println!(
        "predictor: {:.1}us (1 cell) -> {:.1}us (7 cells) per TTI",
        rows[0].predictor_us_per_tti, rows[6].predictor_us_per_tti
    );

    write_json("fig15a_overhead", &rows);
}
