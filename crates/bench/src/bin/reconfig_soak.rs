//! Reconfig soak — live reconfiguration plans against a running pool,
//! exercising the invariant monitor, the rollback controller and the
//! safe-order searcher, plus a plan executed under concurrent fault
//! timelines.
//!
//! Three properties are demonstrated:
//!
//! * **rollback safety** — a plan whose naive order shrinks the pool
//!   before growing it violates the deadline-miss invariant, is rolled
//!   back, and loses no work (per-cell conservation holds through every
//!   apply/rollback cycle);
//! * **safe-order search** — [`concordia_core::search_safe_order`] finds
//!   an order of the *same* steps under which every step commits, and the
//!   result is a pure function of the seed: `--jobs 1` and `--jobs
//!   $(nproc)` produce byte-identical JSON (CI runs both and diffs);
//! * **fault soak** — the safe order still loses no work when core-loss
//!   and core-stall fault windows overlap the transitions.
//!
//! `--check` exits non-zero when any property fails (CI gate). Timing
//! figures (steps/sec, wall time) go to `BENCH_reconfig.json` in the
//! working directory, *separate* from the deterministic soak JSON.
//!
//! Example:
//! `cargo run -p concordia-bench --release --bin reconfig_soak -- --quick --check`

use concordia_bench::{banner, bool_flag, jobs_from_args, write_json, RunLength};
use concordia_core::runner::run_parallel_results;
use concordia_core::{
    search_safe_order, ExperimentReport, ReconfigPlan, ReconfigStep, SearchConfig, SimConfig,
};
use concordia_platform::faults::{FaultKind, FaultPlan};
use concordia_ran::Nanos;

/// `true` when every cell's ledger balances and saw traffic: nothing the
/// run injected was lost, through every apply/rollback cycle.
fn conserved(report: &ExperimentReport) -> bool {
    !report.metrics.per_cell.is_empty()
        && report
            .metrics
            .per_cell
            .iter()
            .all(|l| l.completed == l.injected && l.injected > 0)
}

fn run_one(cfg: SimConfig, jobs: usize) -> ExperimentReport {
    run_parallel_results(vec![cfg], jobs)
        .pop()
        .expect("one result")
        .expect("run completes")
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    let jobs = jobs_from_args();
    let check = bool_flag("--check");
    banner(
        "Reconfig soak (live plan vs a running pool, rollback + safe-order search)",
        "a naive step order is rolled back with zero task loss; the searcher \
         finds an order that commits every step, byte-reproducibly for any --jobs",
    );

    let (secs, profiling) = match len {
        RunLength::Quick => (1, 300),
        RunLength::Standard => (2, 600),
        RunLength::Long => (6, 2_000),
    };

    // 4 cells on 5 cores: the steady state is clean, but shrinking the
    // pool to its floor of one core before growing starves it (4 cells
    // need at least 2 cores at this load).
    let mut base = SimConfig::paper_20mhz();
    base.n_cells = 4;
    base.cores = 5;
    base.load = 0.7;
    base.duration = Nanos::from_secs(secs);
    base.profiling_slots = profiling;
    base.seed = seed;

    let mut plan = ReconfigPlan::new(vec![
        ReconfigStep::ShrinkPool { cores: 4 },
        ReconfigStep::AddCell,
        ReconfigStep::GrowPool { cores: 3 },
    ]);
    plan.start_slot = 300;
    plan.settle_slots = 60;
    plan.max_retries = 2;
    plan.backoff_slots = 40;

    println!(
        "\nscenario: {} cells x {} cores, load {:.0}%, {}s online, seed {seed}, {jobs} jobs",
        base.n_cells,
        base.cores,
        base.load * 100.0,
        secs
    );
    println!(
        "plan (naive order): {:?}",
        plan.steps.iter().map(|s| s.name()).collect::<Vec<_>>()
    );

    let started = std::time::Instant::now();
    let mut failures: Vec<String> = Vec::new();

    // ---- 1. Naive order: must violate an invariant, roll back, lose
    //         nothing. ------------------------------------------------
    let mut naive_cfg = base.clone();
    naive_cfg.reconfig = Some(plan.clone());
    let naive_report = run_one(naive_cfg, jobs);
    let naive_rc = naive_report.reconfig.clone().expect("reconfig ran");
    let naive_conserved = conserved(&naive_report);
    println!(
        "\nnaive order: {}/{} steps committed, {} rollbacks, {} checks, conserved {}",
        naive_rc.committed_steps,
        naive_rc.steps.len(),
        naive_rc.rollbacks,
        naive_rc.invariant_checks,
        if naive_conserved { "yes" } else { "NO" }
    );
    for s in &naive_rc.steps {
        if let Some(v) = &s.violation {
            println!("  {}: {v}", s.step);
        }
    }
    if naive_rc.rollbacks == 0 {
        failures.push("naive order was never rolled back (scenario too easy)".into());
    }
    if naive_rc.feasible {
        failures.push("naive order committed every step (scenario too easy)".into());
    }
    if !naive_conserved {
        failures.push("naive order lost work (conservation violated)".into());
    }

    // ---- 2. Safe-order search over the same steps. -------------------
    let search = search_safe_order(&base, &plan, SearchConfig::default(), jobs);
    println!(
        "\nsearch: {} evaluations, naive feasible {}, safe order {:?}",
        search.evaluations, search.naive_feasible, search.safe_order
    );
    let safe_rc = match &search.safe_order {
        Some(order) => {
            let mut safe_cfg = base.clone();
            safe_cfg.reconfig = Some(plan.with_order(order));
            let safe_report = run_one(safe_cfg, jobs);
            let rc = safe_report.reconfig.clone().expect("reconfig ran");
            println!(
                "safe order {:?}: {}/{} steps committed, {} rollbacks, \
                 final {} cells x {} cores, conserved {}",
                order
                    .iter()
                    .map(|&i| plan.steps[i].name())
                    .collect::<Vec<_>>(),
                rc.committed_steps,
                rc.steps.len(),
                rc.rollbacks,
                rc.final_cells,
                rc.final_cores,
                if conserved(&safe_report) { "yes" } else { "NO" }
            );
            if !rc.feasible {
                failures.push("searched order did not commit every step on re-run".into());
            }
            if !conserved(&safe_report) {
                failures.push("safe order lost work (conservation violated)".into());
            }
            Some(rc)
        }
        None => {
            failures.push("searcher found no feasible order".into());
            None
        }
    };

    // ---- 3. Fault soak: the safe order under concurrent core-loss and
    //         core-stall windows must still lose nothing. --------------
    let fault_order = search.safe_order.clone().unwrap_or_else(|| vec![2, 1, 0]);
    let mut fault_cfg = base.clone();
    fault_cfg.faults = FaultPlan::chaos(
        &[FaultKind::CoreOffline, FaultKind::CoreStall],
        fault_cfg.duration,
    );
    fault_cfg.reconfig = Some(plan.with_order(&fault_order));
    let fault_report = run_one(fault_cfg, jobs);
    let fault_rc = fault_report.reconfig.clone().expect("reconfig ran");
    let fault_conserved = conserved(&fault_report);
    println!(
        "\nfault soak: {}/{} steps committed under faults, {} rollbacks, conserved {}",
        fault_rc.committed_steps,
        fault_rc.steps.len(),
        fault_rc.rollbacks,
        if fault_conserved { "yes" } else { "NO" }
    );
    if !fault_conserved {
        failures.push("fault soak lost work (conservation violated)".into());
    }

    let wall = started.elapsed().as_secs_f64();
    let total_rollbacks =
        naive_rc.rollbacks + safe_rc.as_ref().map_or(0, |rc| rc.rollbacks) + fault_rc.rollbacks;
    let steps_attempted: u64 = [Some(&naive_rc), safe_rc.as_ref(), Some(&fault_rc)]
        .into_iter()
        .flatten()
        .flat_map(|rc| rc.steps.iter())
        .map(|s| s.attempts as u64)
        .sum();

    // Deterministic soak JSON: a pure function of (seed, scenario) — CI
    // byte-compares a --jobs 1 and a --jobs $(nproc) run. No timing here.
    write_json(
        "reconfig_soak",
        &serde_json::json!({
            "seed": seed,
            "simulated_secs": secs,
            "cells": base.n_cells,
            "cores": base.cores,
            "load": base.load,
            "plan": plan,
            "naive": naive_rc,
            "search": search,
            "safe": safe_rc,
            "fault_order": fault_order,
            "fault_soak": fault_rc,
            "failures": failures,
        }),
    );

    // Timing JSON at the repo root (the perf-trajectory artifact): wall
    // time is machine-dependent, so it stays out of the soak JSON above.
    let bench = serde_json::json!({
        "bench": "reconfig",
        "wall_s": wall,
        "steps_attempted": steps_attempted,
        "steps_per_sec": steps_attempted as f64 / wall.max(1e-9),
        "rollbacks": total_rollbacks,
        "search_evaluations": search.evaluations,
    });
    std::fs::write(
        "BENCH_reconfig.json",
        serde_json::to_string_pretty(&bench).expect("serialize bench"),
    )
    .expect("write BENCH_reconfig.json");
    println!("[timing written to BENCH_reconfig.json]");

    if failures.is_empty() {
        println!("\nreconfig soak PASSED");
    } else {
        println!("\nreconfig soak FAILED:");
        for f in &failures {
            println!("  - {f}");
        }
        if check {
            std::process::exit(1);
        }
    }
}
