//! Figs. 17 & 18 (Appendix A.2) — prediction accuracy for the other
//! computationally intensive tasks: LDPC encoding, precoding, channel
//! estimation and equalization.
//!
//! Paper claims reproduced here:
//! * the quantile decision tree consistently beats linear regression on
//!   deadline misses for every task (Fig. 17);
//! * gradient boosting is comparable on misses (channel estimation being
//!   its weak spot in the paper);
//! * the quantile decision tree has a consistently small average WCET
//!   prediction error across tasks (Fig. 18).

use concordia_bench::{banner, write_json, RunLength};
use concordia_core::profile::{profile, random_workload, train_predictor};
use concordia_core::PredictorChoice;
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::cost::CostModel;
use concordia_ran::features::extract;
use concordia_ran::numerology::SlotDirection;
use concordia_ran::task::TaskKind;
use concordia_ran::CellConfig;
use concordia_stats::rng::Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Score {
    task: String,
    model: String,
    scenario: String,
    miss_pct: f64,
    avg_error_us: f64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Figs. 17/18 (appendix: predictor accuracy for encode/precode/chan-est/equalization)",
        "QDT always beats linreg on misses and keeps the smallest avg error",
    );

    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let dataset = profile(&cell, &cost, len.profiling_slots() * 2, 4, seed);

    let tasks = [
        TaskKind::LdpcEncode,
        TaskKind::Precoding,
        TaskKind::ChannelEstimation,
        TaskKind::Equalization,
    ];
    let models = [
        PredictorChoice::LinearRegression,
        PredictorChoice::GradientBoosting,
        PredictorChoice::QuantileDt,
    ];
    let scenarios: Vec<(String, f64)> = vec![
        ("FD".into(), 0.0),
        (
            "FD & redis".into(),
            WorkloadKind::Redis.profile().cache_intensity,
        ),
        (
            "FD & tpcc".into(),
            WorkloadKind::Tpcc.profile().cache_intensity,
        ),
    ];
    let eval_samples = match len {
        concordia_bench::RunLength::Quick => 10_000,
        concordia_bench::RunLength::Standard => 40_000,
        concordia_bench::RunLength::Long => 150_000,
    };

    let mut scores = Vec::new();
    for task in tasks {
        println!(
            "\n{} — miss % / avg error (us):\n{:<20} {:>14} {:>14} {:>14}",
            task.name(),
            "model",
            scenarios[0].0,
            scenarios[1].0,
            scenarios[2].0
        );
        let samples = dataset.samples(task);
        for m in models {
            print!("{:<20}", m.name());
            for (scen, pressure) in &scenarios {
                let mut model = train_predictor(task, samples, m, &cost);
                let mut rng = Rng::new(seed ^ (task.index() as u64) << 8);
                let (mut misses, mut met, mut err) = (0u64, 0u64, 0.0f64);
                let mut produced = 0usize;
                let warmup = eval_samples / 5;
                let dl_task = matches!(task, TaskKind::LdpcEncode | TaskKind::Precoding);
                while produced < eval_samples {
                    let dir = if dl_task {
                        SlotDirection::Downlink
                    } else {
                        SlotDirection::Uplink
                    };
                    let wl = random_workload(&cell, dir, &mut rng);
                    let dag =
                        concordia_ran::dag::build_dag(&cell, 0, 0, concordia_ran::Nanos::ZERO, &wl);
                    for node in &dag.nodes {
                        if node.task.kind != task {
                            continue;
                        }
                        let mut p = node.task.params;
                        p.pool_cores = 4;
                        let f = if *pressure > 0.0 {
                            1.0 + pressure * 0.18 * rng.lognormal(0.0, 0.35)
                        } else {
                            1.0
                        };
                        let runtime = cost.sample_runtime(task, &p, f, &mut rng).as_micros_f64();
                        let x = extract(&p);
                        let pred = model.predict_us(&x);
                        if produced >= warmup {
                            if runtime > pred {
                                misses += 1;
                            } else {
                                met += 1;
                                err += pred - runtime;
                            }
                        }
                        model.observe(&x, runtime);
                        produced += 1;
                    }
                }
                let miss_pct = misses as f64 / (misses + met) as f64 * 100.0;
                let avg_err = if met > 0 { err / met as f64 } else { 0.0 };
                print!(" {miss_pct:>6.3}/{avg_err:<7.1}");
                scores.push(Score {
                    task: task.name().into(),
                    model: m.name().into(),
                    scenario: scen.clone(),
                    miss_pct,
                    avg_error_us: avg_err,
                });
            }
            println!();
        }
    }

    // Ordering checks across all tasks/scenarios.
    println!("\nsummary:");
    for task in tasks {
        let avg = |model: &str, field: fn(&Score) -> f64| {
            let v: Vec<f64> = scores
                .iter()
                .filter(|s| s.task == task.name() && s.model == model)
                .map(field)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        println!(
            "  {:<14} miss%: linreg {:>7.3} vs qdt {:>7.3}; avg err: gbt {:>7.1} vs qdt {:>7.1}",
            task.name(),
            avg("linear_regression", |s| s.miss_pct),
            avg("quantile_dt", |s| s.miss_pct),
            avg("gradient_boosting", |s| s.avg_error_us),
            avg("quantile_dt", |s| s.avg_error_us),
        );
    }

    write_json("fig17_18_appendix", &scores);
}
