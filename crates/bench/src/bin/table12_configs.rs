//! Tables 1 & 2 — cell configurations and the minimum CPU cores required
//! to serve peak traffic (§6).
//!
//! Paper claims reproduced here:
//! * Table 1 lists the two evaluation configurations (100 MHz × 2 TDD
//!   cells with a 1.5 ms deadline; 20 MHz × 7 FDD cells with 2 ms);
//! * Table 2 lists the peak throughputs and the minimum pool sizes: 12
//!   cores for the 100 MHz configuration and 8 for the 20 MHz one.
//!
//! The minimum-core search runs the end-to-end simulator at peak traffic
//! and takes the smallest pool meeting the 99.99 %+ deadline bar.

use concordia_bench::{banner, write_json, RunLength};
use concordia_core::experiments::find_min_cores;
use concordia_core::{Colocation, SimConfig};
use concordia_ran::Nanos;
use serde::Serialize;

#[derive(Serialize)]
struct TableRow {
    config: String,
    n_cells: u32,
    peak_dl_mbps: f64,
    peak_ul_mbps: f64,
    deadline_ms: f64,
    min_cores: u32,
    paper_min_cores: u32,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Tables 1/2 (cell configurations and minimum pool sizes)",
        "100MHz x2 TDD needs 12 cores; 20MHz x7 FDD needs 8 cores at peak traffic",
    );

    println!(
        "\n{:<10} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "config", "cells", "peak DL", "peak UL", "deadline", "min cores", "paper"
    );
    let mut rows = Vec::new();
    for (name, template, paper_min) in [
        ("100MHz", SimConfig::paper_100mhz(), 12u32),
        ("20MHz", SimConfig::paper_20mhz(), 8),
    ] {
        let mut t = template;
        t.load = 1.0;
        t.peak_provisioning = true;
        t.colocation = Colocation::Isolated;
        t.duration = Nanos::from_secs(len.online_secs().min(6));
        t.profiling_slots = len.profiling_slots() / 2;
        t.seed = seed;
        let (min_cores, _) = find_min_cores(&t, 2, 24, 0.9999).expect("feasible");
        println!(
            "{name:<10} {:>7} {:>8.0}Mb {:>8.0}Mb {:>8.1}ms {min_cores:>10} {paper_min:>10}",
            t.n_cells,
            t.cell.peak_dl_mbps,
            t.cell.peak_ul_mbps,
            t.cell.deadline.as_millis_f64()
        );
        rows.push(TableRow {
            config: name.into(),
            n_cells: t.n_cells,
            peak_dl_mbps: t.cell.peak_dl_mbps,
            peak_ul_mbps: t.cell.peak_ul_mbps,
            deadline_ms: t.cell.deadline.as_millis_f64(),
            min_cores,
            paper_min_cores: paper_min,
        });
    }

    write_json("table12_configs", &rows);
}
