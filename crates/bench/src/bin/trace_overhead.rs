//! Trace overhead — proves the observability layer's two contracts:
//!
//! 1. **Zero perturbation** — a traced run produces a byte-identical
//!    report to the untraced run with the same seed (after stripping the
//!    report's `trace` accounting field, which only exists when tracing
//!    is on). The recorder touches no RNG, schedules no event and feeds
//!    nothing back into the simulation, so everything the paper measures
//!    is unchanged.
//! 2. **Cheap enough to leave on** — the wall-clock cost of recording is
//!    small (<5 % is the target on a release build; the bin prints the
//!    measured figure and warns above the bar).
//!
//! It also validates the Chrome trace-event export end to end: the JSON
//! parses back, `traceEvents` is non-empty, and timestamps are monotone
//! nondecreasing within every track — the structural properties Perfetto
//! and `chrome://tracing` rely on.
//!
//! `--check` exits non-zero when identity or export validity fail (CI
//! gate). Wall-clock overhead stays a warning there: debug/CI machines
//! are too noisy for a hard timing gate. `--enforce-overhead` upgrades
//! the 5 % bar to a failure for release-mode local runs.
//!
//! Example:
//! `cargo run -p concordia-bench --release --bin trace_overhead -- --check`

use concordia_bench::{banner, bool_flag, write_json, RunLength};
use concordia_core::{Colocation, ExperimentReport, SimConfig, Simulation};
use concordia_platform::faults::{FaultKind, FaultPlan};
use concordia_platform::trace::{export_chrome_trace, TraceConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_sched::SupervisorConfig;
use serde::{map_get, Value};
use std::process::ExitCode;
use std::time::Instant;

/// The workout: faults, supervisor lifecycle, FPGA offloads and a
/// collocated workload, so every traced event class fires. Load stays
/// at 0.6 — at 0.7 the core-offline windows push the pool near
/// saturation and the queue backlog makes wall clock superlinear in
/// simulated time, which swamps the on/off comparison this bin exists
/// to make.
fn workout(len: RunLength, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_100mhz();
    cfg.cores = 8;
    cfg.duration = concordia_ran::Nanos::from_millis(match len {
        RunLength::Quick => 400,
        RunLength::Standard => 1_500,
        RunLength::Long => 5_000,
    });
    cfg.profiling_slots = match len {
        RunLength::Quick => 250,
        RunLength::Standard => 500,
        RunLength::Long => 1_500,
    };
    cfg.load = 0.6;
    cfg.colocation = Colocation::Single(WorkloadKind::Redis);
    cfg.fpga = true;
    cfg.supervisor = Some(SupervisorConfig::default());
    cfg.faults = FaultPlan::chaos(
        &[FaultKind::CoreOffline, FaultKind::AccelOutage],
        cfg.duration,
    );
    cfg.seed = seed;
    cfg
}

/// Structural validation of the Chrome export (see module docs).
/// Returns `(n_events, problems)`.
fn validate_chrome(trace: &Value) -> (usize, Vec<String>) {
    let mut problems = Vec::new();
    let Value::Map(top) = trace else {
        return (0, vec!["top level is not an object".into()]);
    };
    let Value::Seq(events) = map_get(top, "traceEvents") else {
        return (0, vec!["traceEvents missing or not an array".into()]);
    };
    if events.is_empty() {
        problems.push("traceEvents is empty".into());
    }
    // ts must be nondecreasing within each track (tid).
    let mut last_ts: Vec<(u64, f64)> = Vec::new();
    for ev in events {
        let Value::Map(m) = ev else {
            problems.push("event is not an object".into());
            continue;
        };
        if matches!(map_get(m, "ph"), Value::Str(s) if s == "M") {
            continue; // metadata carries no timestamp ordering contract
        }
        let tid = match map_get(m, "tid") {
            Value::U64(t) => *t,
            _ => {
                problems.push("event without a numeric tid".into());
                continue;
            }
        };
        let ts = match map_get(m, "ts") {
            Value::F64(t) => *t,
            Value::U64(t) => *t as f64,
            _ => {
                problems.push("event without a numeric ts".into());
                continue;
            }
        };
        match last_ts.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, prev)) => {
                if ts < *prev {
                    problems.push(format!("track {tid}: ts {ts} after {prev}"));
                }
                *prev = ts;
            }
            None => last_ts.push((tid, ts)),
        }
    }
    (events.len(), problems)
}

fn strip_trace(mut r: ExperimentReport) -> ExperimentReport {
    r.trace = None;
    r
}

fn main() -> ExitCode {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    let check = bool_flag("--check");
    let enforce_overhead = bool_flag("--enforce-overhead");
    banner(
        "Trace overhead (observability layer determinism + cost)",
        "tracing on vs off: byte-identical reports, valid Chrome export, small wall-clock cost",
    );

    let t0 = Instant::now();
    let report_off = Simulation::new(workout(len, seed)).run();
    let wall_off = t0.elapsed();

    let mut traced_cfg = workout(len, seed);
    traced_cfg.trace = Some(TraceConfig::default());
    let t1 = Instant::now();
    let (report_on, recorder) = Simulation::new(traced_cfg).run_traced();
    let wall_on = t1.elapsed();
    let recorder = recorder.expect("tracing was enabled");
    let trace_summary = recorder.summary();

    // Gate 1: byte identity after stripping the trace accounting field.
    let json_off = serde_json::to_string(&report_off).expect("report");
    let json_on = serde_json::to_string(&strip_trace(report_on.clone())).expect("report");
    let identical = json_off == json_on;

    // Gate 2: the Chrome export is structurally valid.
    let chrome = export_chrome_trace(&recorder);
    let reparsed: Value = serde_json::from_str(&serde_json::to_string(&chrome).expect("trace"))
        .expect("chrome export must be valid JSON");
    let (n_events, problems) = validate_chrome(&reparsed);

    let overhead_pct = if wall_off.as_secs_f64() > 0.0 {
        (wall_on.as_secs_f64() / wall_off.as_secs_f64() - 1.0) * 100.0
    } else {
        0.0
    };

    println!(
        "\nuntraced {:.2}s | traced {:.2}s | overhead {overhead_pct:+.1}%",
        wall_off.as_secs_f64(),
        wall_on.as_secs_f64()
    );
    println!(
        "report identity (trace field stripped): {}",
        if identical {
            "byte-identical"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "chrome export: {n_events} events, {} recorded / {} dropped / {} snapshots, {}",
        trace_summary.events_recorded,
        trace_summary.events_dropped,
        trace_summary.snapshots,
        if problems.is_empty() {
            "valid (monotone per-track timestamps)".to_string()
        } else {
            format!("INVALID: {}", problems.join("; "))
        }
    );
    if overhead_pct > 5.0 {
        println!("WARNING: overhead above the 5% target (noisy machine or debug build?)");
    }

    write_json(
        "trace_overhead",
        &serde_json::json!({
            "seed": seed,
            "untraced_secs": wall_off.as_secs_f64(),
            "traced_secs": wall_on.as_secs_f64(),
            "overhead_pct": overhead_pct,
            "reports_identical": identical,
            "chrome_events": n_events,
            "chrome_problems": problems,
            "events_recorded": trace_summary.events_recorded,
            "events_dropped": trace_summary.events_dropped,
            "snapshots": trace_summary.snapshots,
        }),
    );

    let timing_ok = !enforce_overhead || overhead_pct <= 5.0;
    if (check || enforce_overhead) && !(identical && problems.is_empty() && timing_ok) {
        eprintln!("trace_overhead: FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
