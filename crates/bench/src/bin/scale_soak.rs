//! Scale soak — C = 1..8 cells on one shared pool, under core-loss
//! faults, driven by the parallel deterministic runner.
//!
//! Two properties are exercised at every cell count:
//!
//! * **conservation** — no cell loses work: every DAG a cell injects
//!   completes, even while fault windows take cores offline mid-task and
//!   the survivors absorb the requeued work;
//! * **runner determinism** — the whole soak is a pure function of the
//!   seed: `--jobs 1` and `--jobs $(nproc)` produce byte-identical JSON
//!   (CI runs both and diffs the files).
//!
//! Each cell count runs a small seed sweep through
//! [`concordia_core::runner::run_sweep`], so the soak also covers the
//! ChaCha seed-derivation path end to end.
//!
//! Example:
//! `cargo run -p concordia-bench --release --bin scale_soak -- --quick --jobs 2`

use concordia_bench::{banner, cells_from_args, jobs_from_args, u64_flag, write_json, RunLength};
use concordia_core::runner::run_sweep;
use concordia_core::SimConfig;
use concordia_platform::faults::{FaultKind, FaultPlan};
use concordia_platform::metrics::CellCounters;
use concordia_ran::Nanos;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cells: u32,
    runs: usize,
    dags: usize,
    violations: u64,
    reliability: f64,
    cores_failed: u64,
    tasks_requeued: u64,
    per_cell: Vec<CellCounters>,
    conserved: bool,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    let jobs = jobs_from_args();
    let max_cells = cells_from_args(8);
    let repeats = u64_flag("--repeat", 2) as usize;
    banner(
        "Scale soak (1..C cells sharing one pool, under core-loss faults)",
        "no cell loses work as the deployment scales, and the parallel runner's \
         report bytes are independent of --jobs",
    );

    let (secs, profiling) = match len {
        RunLength::Quick => (1, 300),
        RunLength::Standard => (3, 600),
        RunLength::Long => (10, 2_000),
    };
    let dur = Nanos::from_secs(secs);

    println!(
        "\ncells 1..{max_cells}, {repeats} runs each, {secs}s simulated per run, \
         seed {seed}, {jobs} jobs"
    );
    println!(
        "\n{:>6} {:>6} {:>9} {:>11} {:>12} {:>9} {:>9} {:>10}",
        "cells", "runs", "dags", "violations", "reliability", "failed", "requeued", "conserved"
    );

    let mut rows = Vec::new();
    for cells in 1..=max_cells {
        let mut base = SimConfig::paper_20mhz();
        base.n_cells = cells;
        // Keep the pool under real pressure as cells are added: one core
        // per cell plus one to absorb the fault windows.
        base.cores = cells + 1;
        base.duration = dur;
        base.profiling_slots = profiling;
        base.load = 0.5;
        base.faults = FaultPlan::chaos(&[FaultKind::CoreOffline, FaultKind::CoreStall], dur);

        let sweep = run_sweep(&base, seed ^ u64::from(cells), repeats, jobs);

        // Merge the sweep's per-cell ledgers; conservation must hold in
        // every run for every cell.
        let mut per_cell = vec![CellCounters::default(); cells as usize];
        let mut dags = 0usize;
        let mut violations = 0u64;
        let mut cores_failed = 0u64;
        let mut tasks_requeued = 0u64;
        for run in &sweep.runs {
            dags += run.metrics.dags;
            violations += run.metrics.violations;
            cores_failed += run.metrics.cores_failed;
            tasks_requeued += run.metrics.tasks_requeued;
            for (c, ledger) in run.metrics.per_cell.iter().enumerate() {
                per_cell[c].injected += ledger.injected;
                per_cell[c].completed += ledger.completed;
                per_cell[c].violations += ledger.violations;
            }
        }
        let conserved = per_cell.iter().all(|l| l.completed == l.injected)
            && per_cell.iter().all(|l| l.injected > 0);
        let reliability = if dags == 0 {
            1.0
        } else {
            1.0 - violations as f64 / dags as f64
        };

        let row = Row {
            cells,
            runs: sweep.runs.len(),
            dags,
            violations,
            reliability,
            cores_failed,
            tasks_requeued,
            per_cell,
            conserved,
        };
        println!(
            "{:>6} {:>6} {:>9} {:>11} {:>12.6} {:>9} {:>9} {:>10}",
            row.cells,
            row.runs,
            row.dags,
            row.violations,
            row.reliability,
            row.cores_failed,
            row.tasks_requeued,
            if row.conserved { "yes" } else { "NO" }
        );
        rows.push(row);
    }

    let all_conserved = rows.iter().all(|r| r.conserved);
    println!(
        "\nconservation {} across {} cell counts",
        if all_conserved { "held" } else { "VIOLATED" },
        rows.len()
    );

    // Note: `jobs` is deliberately absent from the JSON — CI byte-compares
    // the files of a --jobs 1 and a --jobs $(nproc) run.
    write_json(
        "scale_soak",
        &serde_json::json!({
            "seed": seed,
            "simulated_secs": secs,
            "repeats": repeats,
            "rows": rows,
            "all_conserved": all_conserved,
        }),
    );

    if !all_conserved {
        std::process::exit(1);
    }
}
