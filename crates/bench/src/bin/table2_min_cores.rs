//! Table 2 scale-out — minimum pool cores vs number of pooled cells,
//! Concordia's shared pool against per-cell static partitioning.
//!
//! The paper's Table 2 sizes the pool by the minimum number of CPU cores
//! that still processes peak traffic reliably. Operators today partition
//! statically: every cell gets its own reserved slice, so the deployment
//! costs `C x (min cores of one cell)`. Concordia pools the cells on one
//! scheduler, and because co-located carriers are not slot-synchronous
//! (their boundaries interleave — `SimConfig::cell_stagger`), the cells'
//! compute peaks rarely coincide: the shared pool rides the statistical
//! multiplexing and needs strictly fewer cores, with the gap widening as
//! more cells share.
//!
//! Example:
//! `cargo run -p concordia-bench --release --bin table2_min_cores -- --quick`
//!
//! `--check` exits non-zero unless the shared pool beats static
//! partitioning for every C >= 4 and the saving grows with C.
//! `--jobs N` caps the worker threads (output bytes never depend on it).

use concordia_bench::{banner, bool_flag, f64_flag, jobs_from_args, write_json, RunLength};
use concordia_core::runner::run_parallel;
use concordia_core::SimConfig;
use concordia_ran::Nanos;
use serde::Serialize;

/// Cell counts reported (the 20 MHz column of Table 2 scaled out).
const CELL_COUNTS: [u32; 4] = [1, 2, 4, 7];

#[derive(Serialize)]
struct Row {
    cells: u32,
    static_cores: u32,
    shared_cores: u32,
    saved_cores: i64,
    shared_reliability: f64,
}

/// Minimum cores meeting `target` reliability for `template`, by running
/// every candidate pool size in parallel and taking the smallest that
/// passes. Same answer as a linear scan, a fraction of the wall-clock.
fn min_cores(template: &SimConfig, max_cores: u32, target: f64, jobs: usize) -> (u32, f64) {
    let configs: Vec<SimConfig> = (1..=max_cores)
        .map(|cores| SimConfig {
            cores,
            ..template.clone()
        })
        .collect();
    let reports = run_parallel(configs, jobs);
    for r in &reports {
        if r.metrics.reliability >= target {
            return (r.cores, r.metrics.reliability);
        }
    }
    let last = reports.last().expect("at least one candidate");
    (last.cores, last.metrics.reliability)
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    let jobs = jobs_from_args();
    let check = bool_flag("--check");
    let load = f64_flag("--load", 1.0).clamp(0.0, 1.0);
    banner(
        "Table 2 scale-out (minimum pool cores vs pooled cells)",
        "one shared Concordia pool needs fewer cores than C static per-cell partitions, \
         and the gap grows with C",
    );

    let (secs, profiling, target) = match len {
        RunLength::Quick => (1, 300, 0.999),
        RunLength::Standard => (4, 1_000, 0.9999),
        RunLength::Long => (15, 2_000, 0.9999),
    };

    let mut base = SimConfig::paper_20mhz();
    base.duration = Nanos::from_secs(secs);
    base.profiling_slots = profiling;
    base.load = load;
    base.seed = seed;
    // Table 2 sizes for peak traffic, not the bursty average.
    base.peak_provisioning = true;

    println!(
        "\n{}s simulated per candidate, reliability target {}, seed {}, {} jobs",
        secs, target, seed, jobs
    );
    println!(
        "\n{:>6} {:>14} {:>14} {:>9} {:>14}",
        "cells", "static(cores)", "shared(cores)", "saved", "shared rel."
    );

    // One cell on its own pool: the static partition's per-cell slice.
    // The single-cell deployment has nothing to multiplex, so staggering
    // is irrelevant to it.
    let mut single = base.clone();
    single.n_cells = 1;
    let (per_cell, _) = min_cores(&single, 6, target, jobs);

    let mut rows = Vec::new();
    for cells in CELL_COUNTS {
        let static_cores = per_cell * cells;
        let mut shared = base.clone();
        shared.n_cells = cells;
        // The shared pool can never need more than the static partition
        // (it could always mimic it), so the partition bounds the search.
        let (shared_cores, rel) = min_cores(&shared, static_cores.max(per_cell), target, jobs);
        let row = Row {
            cells,
            static_cores,
            shared_cores,
            saved_cores: static_cores as i64 - shared_cores as i64,
            shared_reliability: rel,
        };
        println!(
            "{:>6} {:>14} {:>14} {:>9} {:>14.5}",
            row.cells, row.static_cores, row.shared_cores, row.saved_cores, row.shared_reliability
        );
        rows.push(row);
    }

    write_json(
        "table2_min_cores",
        &serde_json::json!({
            "seed": seed,
            "simulated_secs": secs,
            "load": load,
            "reliability_target": target,
            "per_cell_static_cores": per_cell,
            "rows": rows,
        }),
    );

    if check {
        let mut ok = true;
        let mut last_gap = i64::MIN;
        for row in &rows {
            if row.cells >= 4 {
                if row.shared_cores >= row.static_cores {
                    eprintln!(
                        "CHECK FAILED: C={} shared {} >= static {}",
                        row.cells, row.shared_cores, row.static_cores
                    );
                    ok = false;
                }
                if row.saved_cores <= last_gap {
                    eprintln!(
                        "CHECK FAILED: C={} saving {} did not grow (previous {})",
                        row.cells, row.saved_cores, last_gap
                    );
                    ok = false;
                }
                last_gap = row.saved_cores;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("\ncheck passed: shared < static for C >= 4 and the saving grows with C");
    }
}
