//! Fig. 7 — mapping of runtime samples to decision-tree leaves and the
//! effect of interference on their distributions (§4.2).
//!
//! Paper claims reproduced here:
//! * the offline-trained quantile decision tree groups runtime samples so
//!   that within-leaf variance is small relative to the global variance
//!   (Fig. 7a top);
//! * with a collocated workload (TPCC/Redis) the *grouping stays valid*:
//!   online samples land in the same leaves with visually similar
//!   distributions (Fig. 7a bottom);
//! * the most distorted leaves (largest Wasserstein distance) show a
//!   heavier tail but runtimes "still located in the same region"
//!   (Fig. 7b);
//! * the KS test rejects equality of isolated vs interfered runtime
//!   distributions with p << 0.001 (§4.1 challenge 2).

use concordia_bench::{banner, write_json, RunLength};
use concordia_core::profile::{profile, random_workload};
use concordia_core::PredictorChoice;
use concordia_predictor::qdt::QuantileDecisionTree;
use concordia_predictor::tree::TreeConfig;
use concordia_ran::cost::CostModel;
use concordia_ran::features::{extract, handpicked};
use concordia_ran::numerology::SlotDirection;
use concordia_ran::task::TaskKind;
use concordia_ran::CellConfig;
use concordia_stats::rng::Rng;
use concordia_stats::tests::{ks_two_sample, wasserstein1};
use serde::Serialize;

#[derive(Serialize)]
struct LeafStat {
    leaf: usize,
    samples_isolated: usize,
    samples_interfered: usize,
    mean_isolated: f64,
    mean_interfered: f64,
    wasserstein: f64,
}

#[derive(Serialize)]
struct Fig7Results {
    n_leaves: usize,
    global_variance: f64,
    within_leaf_variance: f64,
    ks_statistic: f64,
    ks_p_value: f64,
    leaves: Vec<LeafStat>,
    most_distorted_leaf: usize,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 7 (leaf-node runtime distributions under interference)",
        "offline tree grouping stays valid online; interference => heavier tail, same region; KS p << 0.001",
    );

    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let slots = len.profiling_slots() * 2;

    // Offline phase: train the decode tree in isolation (Algorithm 1 uses
    // the hand-picked features; the full pipeline is exercised in the
    // fig14 harness — here we keep the tree small enough to tabulate).
    let dataset = profile(&cell, &cost, slots, 8, seed);
    let decode = dataset.samples(TaskKind::LdpcDecode);
    let feats: Vec<usize> = handpicked(TaskKind::LdpcDecode)
        .iter()
        .map(|&f| f as usize)
        .collect();
    let tree = QuantileDecisionTree::fit(
        decode,
        &feats,
        &TreeConfig {
            max_depth: 5,
            min_leaf: 100,
            n_thresholds: 16,
        },
    );
    println!(
        "\ntrained decode tree: {} leaves ({} samples)",
        tree.n_leaves(),
        decode.len()
    );
    let _ = PredictorChoice::QuantileDt; // the trained variant under study

    // Collect fresh isolated + interfered samples per leaf (TPCC-like
    // pressure 1.1 on a cold-ish pool => interference factor ~1.15-1.3).
    let mut rng = Rng::new(seed ^ 0xF167);
    let n_leaves = tree.n_leaves();
    let mut iso: Vec<Vec<f64>> = vec![Vec::new(); n_leaves];
    let mut intf: Vec<Vec<f64>> = vec![Vec::new(); n_leaves];
    let runs = slots * 2;
    for _ in 0..runs {
        let wl = random_workload(&cell, SlotDirection::Uplink, &mut rng);
        let dag =
            concordia_ran::dag::build_uplink_dag(&cell, 0, 0, concordia_ran::Nanos::ZERO, &wl);
        for node in &dag.nodes {
            if node.task.kind != TaskKind::LdpcDecode {
                continue;
            }
            let mut p = node.task.params;
            p.pool_cores = 4;
            let x = extract(&p);
            let leaf = tree.leaf_of(&x);
            iso[leaf].push(
                cost.sample_runtime(TaskKind::LdpcDecode, &p, 1.0, &mut rng)
                    .as_micros_f64(),
            );
            // TPCC-like interference factor distribution.
            let f = 1.0 + 1.1 * 0.18 * rng.lognormal(0.0, 0.35);
            intf[leaf].push(
                cost.sample_runtime(TaskKind::LdpcDecode, &p, f, &mut rng)
                    .as_micros_f64(),
            );
        }
    }

    // Fig. 7a: per-leaf stats + variance decomposition.
    let all_iso: Vec<f64> = iso.iter().flatten().copied().collect();
    let gm = all_iso.iter().sum::<f64>() / all_iso.len() as f64;
    let gvar = all_iso.iter().map(|x| (x - gm).powi(2)).sum::<f64>() / all_iso.len() as f64;
    let mut within = 0.0;
    let mut leaves = Vec::new();
    println!(
        "\n{:>5} {:>8} {:>12} {:>12} {:>12}",
        "leaf", "samples", "mean iso", "mean tpcc", "wasserstein"
    );
    for l in 0..n_leaves {
        if iso[l].len() < 30 || intf[l].len() < 30 {
            continue;
        }
        let mi = iso[l].iter().sum::<f64>() / iso[l].len() as f64;
        let mt = intf[l].iter().sum::<f64>() / intf[l].len() as f64;
        within += iso[l].iter().map(|x| (x - mi).powi(2)).sum::<f64>();
        let w = wasserstein1(&iso[l], &intf[l]);
        println!("{l:>5} {:>8} {mi:>12.1} {mt:>12.1} {w:>12.2}", iso[l].len());
        leaves.push(LeafStat {
            leaf: l,
            samples_isolated: iso[l].len(),
            samples_interfered: intf[l].len(),
            mean_isolated: mi,
            mean_interfered: mt,
            wasserstein: w,
        });
    }
    let wvar = within / all_iso.len() as f64;
    println!(
        "\nvariance: global {gvar:.0} vs within-leaf {wvar:.0} ({:.1}% of global) — Fig. 7a grouping",
        wvar / gvar * 100.0
    );

    // §4.1: KS test on pooled isolated vs interfered samples.
    let all_intf: Vec<f64> = intf.iter().flatten().copied().collect();
    let ks = ks_two_sample(&all_iso, &all_intf);
    println!(
        "KS test isolated vs TPCC-interfered: D={:.4}, p={:.2e} (paper: p << 0.001)",
        ks.statistic, ks.p_value
    );

    // Fig. 7b: zoom into the most distorted leaf.
    let worst = leaves
        .iter()
        .max_by(|a, b| a.wasserstein.partial_cmp(&b.wasserstein).unwrap())
        .expect("at least one populated leaf");
    println!(
        "\nmost distorted leaf {} (W1={:.2}): tail comparison",
        worst.leaf, worst.wasserstein
    );
    for q in [0.5, 0.9, 0.99, 0.999] {
        let qi = concordia_stats::summary::quantile(&iso[worst.leaf], q).unwrap();
        let qt = concordia_stats::summary::quantile(&intf[worst.leaf], q).unwrap();
        println!(
            "  q{:<6} isolated {qi:>8.1}us  interfered {qt:>8.1}us  (+{:.1}%)",
            q * 100.0,
            (qt / qi - 1.0) * 100.0
        );
    }
    println!("(heavier tail, same region — the Fig. 7b observation that lets\n Concordia keep the offline tree and only refresh leaf buffers online)");

    let most_distorted_leaf = worst.leaf;
    write_json(
        "fig07_leaf_distributions",
        &Fig7Results {
            n_leaves,
            global_variance: gvar,
            within_leaf_variance: wvar,
            ks_statistic: ks.statistic,
            ks_p_value: ks.p_value,
            leaves,
            most_distorted_leaf,
        },
    );
}
