//! Throughput soak — the first engine benchmark: simulated slots/sec of
//! the per-slot hot path at C ∈ {1, 16, 100} pooled 100 MHz cells, run
//! under both event engines (`legacy` binary heap vs `wheel` calendar
//! queue + allocation-free hot path).
//!
//! Two outputs:
//!
//! - `throughput_soak.json` (under `bench-results/` or
//!   `CONCORDIA_RESULTS_DIR`): the *deterministic* soak results — per-C
//!   DAG counts, violations, reliability and report fingerprints. These
//!   bytes are identical for both engines (the engines are byte-identical
//!   by contract) and independent of `--jobs` and of the host, so CI can
//!   diff the file across engine and jobs settings.
//! - `BENCH_throughput.json` in the working directory: the *timing*
//!   figures — wall-clock, simulated cell-slots/sec per engine, and the
//!   wheel/legacy speedup per C. Machine-dependent, committed at the repo
//!   root as the reference measurement.
//!
//! Two throughput figures appear per pool size, and they answer different
//! questions:
//!
//! - *end-to-end* slots/sec: the whole simulation under each engine. The
//!   slot physics (traffic draws, cost sampling, per-node WCET
//!   prediction, metrics) is byte-identical between engines by contract,
//!   so it bounds this ratio well below the engines' own gap — the
//!   honest number for "how much faster are my experiments" (~1.2–1.4×).
//! - *engine hot loop* slots/sec: the C-cell slot-boundary event pattern
//!   (pushes of jittered task completions, in-order drains at every
//!   boundary) replayed through each queue implementation in isolation.
//!   This measures the event engine itself — the thing this benchmark
//!   gates — where the calendar queue's O(1) operations beat the binary
//!   heap's O(log n) on a thousands-deep queue.
//!
//! `--check` turns the run into a CI gate:
//!
//! - legacy and wheel canonical reports must be byte-identical at every C;
//! - the wheel engine's hot loop must sustain ≥ 2× the legacy hot-loop
//!   slots/sec on the C = 16 event pattern (both replays must also agree
//!   on a drain-order checksum — same events, same order);
//! - every scenario must complete DAGs (a silent no-op run is a failure).
//!
//! Runs are sequential by design — each engine's wall-clock is measured
//! in isolation, so `--jobs` is accepted (CLI symmetry with the other
//! soaks) but never changes scheduling or a single output byte.

use concordia_bench::{
    banner, bool_flag, f64_flag, seed_from_args, u64_flag, write_json, RunLength,
};
use concordia_core::{Colocation, SimConfig, Simulation};
use concordia_platform::events::{EngineChoice, EngineQueue};
use concordia_ran::time::Nanos;
use serde::Serialize;
use std::time::Instant;

/// Task-completion events pushed per cell-slot in the hot-loop replay —
/// the node count of a typical 100 MHz load-0.5 slot pair.
const EVENTS_PER_SLOT: u64 = 40;

/// Replays `slots` slot boundaries of a `cells`-cell staggered deployment
/// through one event-queue implementation: at every boundary the due
/// events are drained in time order, then the boundary's task completions
/// are pushed at deterministically jittered offsets up to three slots
/// ahead (the deadline window), keeping the queue thousands of entries
/// deep at C = 16 — the same pressure the simulation applies, minus the
/// simulation. Returns cell-slots/sec and a drain-order checksum that
/// must agree across engines.
fn engine_hot_loop(engine: EngineChoice, cells: u64, slots: u64) -> (f64, u64) {
    let mut q: EngineQueue<u64> = EngineQueue::new(engine);
    let slot_ns: u64 = 500_000; // 100 MHz numerology: 0.5 ms slots
    let stagger = slot_ns / cells.max(1);
    let mut jitter: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut payload: u64 = 0;
    let mut checksum: u64 = 0;
    let drain = |q: &mut EngineQueue<u64>, t_end: Nanos, sum: &mut u64| {
        while let Some((t, p)) = q.pop_due(t_end) {
            *sum = sum.wrapping_mul(31).wrapping_add(t.as_nanos() ^ p);
        }
    };
    let t0 = Instant::now();
    for s in 0..slots {
        for c in 0..cells {
            let boundary = Nanos(s * slot_ns + c * stagger);
            drain(&mut q, boundary, &mut checksum);
            for _ in 0..EVENTS_PER_SLOT {
                // xorshift64: cheap, deterministic completion jitter.
                jitter ^= jitter << 13;
                jitter ^= jitter >> 7;
                jitter ^= jitter << 17;
                let offset = 10_000 + jitter % (3 * slot_ns);
                q.push(boundary + Nanos(offset), payload);
                payload += 1;
            }
        }
    }
    drain(&mut q, Nanos(u64::MAX), &mut checksum);
    let rate = (slots * cells) as f64 / t0.elapsed().as_secs_f64();
    (rate, checksum)
}

/// One pooled-deployment size of the sweep.
struct Scenario {
    cells: u32,
    cores: u32,
    /// Simulated online duration in milliseconds for this run length.
    sim_millis: u64,
}

/// Timing row for `BENCH_throughput.json` (one per scenario × engine).
#[derive(Serialize)]
struct TimingRow {
    engine: &'static str,
    cells: u32,
    cores: u32,
    sim_secs: f64,
    cell_slots: u64,
    build_secs: f64,
    run_secs: f64,
    slots_per_sec: f64,
}

/// Wheel-over-legacy throughput ratio at one pool size.
#[derive(Serialize)]
struct SpeedupRow {
    cells: u32,
    speedup: f64,
}

/// Hot-loop replay row for `BENCH_throughput.json` (one per pool size ×
/// engine).
#[derive(Serialize)]
struct HotLoopRow {
    engine: &'static str,
    cells: u32,
    slots: u64,
    slots_per_sec: f64,
}

/// Deterministic row for the soak JSON (one per scenario; engine-free —
/// both engines produce these exact values by the byte-identity contract).
#[derive(Serialize)]
struct SoakRow {
    cells: u32,
    cores: u32,
    sim_secs: f64,
    cell_slots: u64,
    dags: usize,
    violations: u64,
    reliability: f64,
    fingerprint: String,
}

fn scenarios(len: RunLength) -> Vec<Scenario> {
    // ~3.2 cores/cell at load 0.5 keeps every size feasible; durations
    // shrink with C so the largest pool stays runnable on CI while the
    // long preset still covers minutes of simulated time in total.
    let (c1, c16, c100) = match len {
        RunLength::Quick => (2_000, 1_000, 200),
        RunLength::Standard => (10_000, 6_000, 1_000),
        RunLength::Long => (90_000, 60_000, 6_000),
    };
    vec![
        Scenario {
            cells: 1,
            cores: 6,
            sim_millis: c1,
        },
        Scenario {
            cells: 16,
            cores: 52,
            sim_millis: c16,
        },
        Scenario {
            cells: 100,
            cores: 320,
            sim_millis: c100,
        },
    ]
}

fn config(s: &Scenario, seed: u64, len: RunLength, engine: EngineChoice) -> SimConfig {
    let mut cfg = SimConfig::paper_100mhz();
    cfg.n_cells = s.cells;
    cfg.cores = s.cores;
    cfg.load = f64_flag("--load", 0.5);
    cfg.cell_stagger = !bool_flag("--no-stagger");
    cfg.duration = Nanos::from_millis(s.sim_millis);
    cfg.profiling_slots = len.profiling_slots();
    cfg.seed = seed;
    cfg.colocation = Colocation::Isolated;
    cfg.engine = engine;
    cfg
}

fn main() {
    let len = RunLength::from_args();
    let seed = seed_from_args();
    let check = bool_flag("--check");
    // `--engine legacy|wheel` restricts the sweep to one engine (for
    // cross-process byte diffs and profiling); default runs both and
    // byte-compares inline. `--cells N` restricts to one pool size;
    // `--secs N` overrides every scenario's simulated duration.
    let engines: Vec<EngineChoice> = match std::env::args()
        .skip_while(|a| a != "--engine")
        .nth(1)
        .as_deref()
    {
        Some("legacy") => vec![EngineChoice::Legacy],
        Some("wheel") => vec![EngineChoice::Wheel],
        _ => vec![EngineChoice::Legacy, EngineChoice::Wheel],
    };
    let only_cells = u64_flag("--cells", 0) as u32;
    let secs_override = u64_flag("--secs", 0);

    banner(
        "engine throughput (slots/sec)",
        "the calendar-queue engine sustains >=2x the legacy slots/sec at C=16, \
         byte-identical reports",
    );

    let mut timing: Vec<TimingRow> = Vec::new();
    let mut soak: Vec<SoakRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut speedups: Vec<SpeedupRow> = Vec::new();

    println!(
        "\n{:>6} {:>6} {:>7} {:>8} {:>11} {:>9} {:>9} {:>12}",
        "engine", "cells", "cores", "sim_s", "cell_slots", "build_s", "run_s", "slots/sec"
    );
    let mut sweep = scenarios(len);
    if only_cells > 0 {
        sweep.retain(|s| s.cells == only_cells);
    }
    if secs_override > 0 {
        for s in &mut sweep {
            s.sim_millis = secs_override * 1_000;
        }
    }
    for s in &sweep {
        let sim_secs = s.sim_millis as f64 / 1e3;
        let mut jsons: Vec<String> = Vec::new();
        let mut rates: Vec<f64> = Vec::new();
        for &engine in &engines {
            let cfg = config(s, seed, len, engine);
            let slot = cfg.cell.slot_duration().as_nanos();
            let cell_slots = cfg.duration.as_nanos() / slot * s.cells as u64;

            let t = Instant::now();
            let sim = Simulation::new(cfg);
            let build_secs = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let report = sim.run();
            let run_secs = t.elapsed().as_secs_f64();
            let slots_per_sec = cell_slots as f64 / run_secs;

            println!(
                "{:>6} {:>6} {:>7} {:>8.1} {:>11} {:>9.2} {:>9.2} {:>12.0}",
                engine.name(),
                s.cells,
                s.cores,
                sim_secs,
                cell_slots,
                build_secs,
                run_secs,
                slots_per_sec
            );
            if report.metrics.dags == 0 {
                failures.push(format!(
                    "C={} {}: run completed no DAGs",
                    s.cells,
                    engine.name()
                ));
            }
            if engine == *engines.last().unwrap() {
                soak.push(SoakRow {
                    cells: s.cells,
                    cores: s.cores,
                    sim_secs,
                    cell_slots,
                    dags: report.metrics.dags,
                    violations: report.metrics.violations,
                    reliability: report.metrics.reliability,
                    fingerprint: report.fingerprint(),
                });
            }
            jsons.push(report.to_canonical_json());
            rates.push(slots_per_sec);
            timing.push(TimingRow {
                engine: engine.name(),
                cells: s.cells,
                cores: s.cores,
                sim_secs,
                cell_slots,
                build_secs,
                run_secs,
                slots_per_sec,
            });
        }
        if jsons.len() == 2 {
            if jsons[0] != jsons[1] {
                failures.push(format!(
                    "C={}: legacy and wheel reports diverged ({} vs {} bytes)",
                    s.cells,
                    jsons[0].len(),
                    jsons[1].len()
                ));
            }
            let speedup = rates[1] / rates[0];
            println!(
                "        C={:<3} end-to-end wheel/legacy speedup: {:.2}x",
                s.cells, speedup
            );
            speedups.push(SpeedupRow {
                cells: s.cells,
                speedup,
            });
        }
    }

    // Engine hot loop: the queue implementations replaying the same slot
    // pattern head to head. This is the gated figure — the engines do
    // identical event work here, so the ratio is theirs alone.
    let hot_slots = match len {
        RunLength::Quick => 5_000,
        RunLength::Standard => 20_000,
        RunLength::Long => 60_000,
    };
    let mut hot_rows: Vec<HotLoopRow> = Vec::new();
    let mut hot_speedups: Vec<SpeedupRow> = Vec::new();
    println!(
        "\n{:>6} {:>6} {:>8} {:>14}   (engine hot loop, {} events/slot)",
        "engine", "cells", "slots", "slots/sec", EVENTS_PER_SLOT
    );
    for s in &sweep {
        let mut rates: Vec<f64> = Vec::new();
        let mut sums: Vec<u64> = Vec::new();
        for &engine in &engines {
            // Best of three replays: the replay is deterministic, so the
            // fastest run is the one least perturbed by background load.
            let (mut rate, sum) = engine_hot_loop(engine, s.cells as u64, hot_slots);
            for _ in 0..2 {
                let (r, s2) = engine_hot_loop(engine, s.cells as u64, hot_slots);
                assert_eq!(s2, sum, "deterministic replay must repeat exactly");
                rate = rate.max(r);
            }
            println!(
                "{:>6} {:>6} {:>8} {:>14.0}",
                engine.name(),
                s.cells,
                hot_slots,
                rate
            );
            hot_rows.push(HotLoopRow {
                engine: engine.name(),
                cells: s.cells,
                slots: hot_slots,
                slots_per_sec: rate,
            });
            rates.push(rate);
            sums.push(sum);
        }
        if sums.len() == 2 {
            if sums[0] != sums[1] {
                failures.push(format!(
                    "C={}: hot-loop drain checksums diverged (the queues \
                     popped different event orders)",
                    s.cells
                ));
            }
            let speedup = rates[1] / rates[0];
            println!(
                "        C={:<3} hot-loop wheel/legacy speedup: {:.2}x",
                s.cells, speedup
            );
            hot_speedups.push(SpeedupRow {
                cells: s.cells,
                speedup,
            });
            if check && s.cells == 16 && speedup < 2.0 {
                failures.push(format!(
                    "C=16: wheel hot loop is only {speedup:.2}x legacy \
                     (gate: >=2x slots/sec on the engine hot loop)"
                ));
            }
        }
    }

    write_json(
        "throughput_soak",
        &serde_json::json!({
            "bench": "throughput_soak",
            "seed": seed,
            "load": f64_flag("--load", 0.5),
            "cell": "tdd_100mhz",
            "rows": soak,
        }),
    );

    std::fs::write(
        "BENCH_throughput.json",
        serde_json::to_string_pretty(&serde_json::json!({
            "bench": "throughput_soak",
            "mode": format!("{len:?}").to_lowercase(),
            "seed": seed,
            "rows": timing,
            "end_to_end_speedup": speedups,
            "engine_hot_loop": hot_rows,
            "hot_loop_speedup": hot_speedups,
        }))
        .expect("serialize timing")
            + "\n",
    )
    .expect("write BENCH_throughput.json");
    println!("[timing written to BENCH_throughput.json]");

    if failures.is_empty() {
        println!("\nthroughput_soak: all checks passed");
    } else {
        println!("\nthroughput_soak: FAILURES");
        for f in &failures {
            println!("  - {f}");
        }
        if check {
            std::process::exit(1);
        }
    }
}
