//! Fig. 15b — effect of the TTI deadline parameter on tail latency and
//! reclaimed cores (§6.5).
//!
//! Paper claims reproduced here: for the 20 MHz × 7-cell configuration at
//! 25 % load, shortening the DAG deadline lowers the 99.999 % processing
//! latency at the expense of reclaimed CPU — the deadline is a tuning knob
//! trading vRAN reliability margin against sharing.

use concordia_bench::{banner, pct, quantile_or_nan, write_json, RunLength};
use concordia_core::experiments::deadline_sweep;
use concordia_core::{Colocation, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::Nanos;
use serde::Serialize;

#[derive(Serialize)]
struct Fig15bRow {
    deadline_us: f64,
    p99999_us: f64,
    reclaimed_pct: f64,
    reliability: f64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 15b (TTI deadline knob, 20MHz config at 25% load)",
        "shorter deadline => lower tail latency but fewer reclaimed cores",
    );

    let mut template = SimConfig::paper_20mhz();
    template.load = 0.25;
    template.duration = Nanos::from_secs(len.online_secs());
    template.profiling_slots = len.profiling_slots();
    template.colocation = Colocation::Single(WorkloadKind::Redis);
    template.seed = seed;

    let deadlines: Vec<Nanos> = [1600u64, 1700, 1800, 1900, 2000]
        .iter()
        .map(|&us| Nanos::from_micros(us))
        .collect();

    println!(
        "\n{:>12} {:>14} {:>12} {:>12}",
        "deadline(us)", "p99.999(us)", "reclaimed", "reliability"
    );
    let mut rows = Vec::new();
    for (d, r) in deadline_sweep(&template, &deadlines) {
        println!(
            "{:>12.0} {:>14.0} {:>12} {:>12.6}",
            d.as_micros_f64(),
            quantile_or_nan(r.metrics.p99999_latency_us),
            pct(r.metrics.reclaimed_fraction),
            r.metrics.reliability
        );
        rows.push(Fig15bRow {
            deadline_us: d.as_micros_f64(),
            p99999_us: quantile_or_nan(r.metrics.p99999_latency_us),
            reclaimed_pct: r.metrics.reclaimed_fraction * 100.0,
            reliability: r.metrics.reliability,
        });
    }

    let first = &rows[0];
    let last = rows.last().unwrap();
    println!(
        "\ntrade-off: deadline {}us -> {}us changes p99.999 by {:+.0}us and reclaimed by {:+.1} pp",
        first.deadline_us,
        last.deadline_us,
        last.p99999_us - first.p99999_us,
        last.reclaimed_pct - first.reclaimed_pct
    );

    write_json("fig15b_deadline_sweep", &rows);
}
