//! Table 5 (Appendix A.1) — breakdown of the processing time spent in the
//! most expensive signal-processing tasks.
//!
//! Paper claims reproduced here: decoding takes > 60 % of uplink slot
//! processing, channel estimation > 8 %, equalization > 5 %,
//! demodulation > 6 %; encoding takes > 40 % of downlink processing,
//! precoding > 15 %, modulation > 10 %.

use concordia_bench::{banner, pct, write_json, RunLength};
use concordia_core::profile::random_workload;
use concordia_ran::cost::CostModel;
use concordia_ran::dag::build_dag;
use concordia_ran::numerology::SlotDirection;
use concordia_ran::task::TaskKind;
use concordia_ran::{CellConfig, Nanos};
use concordia_stats::rng::Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Share {
    task: String,
    direction: String,
    share_pct: f64,
    paper_bound_pct: f64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Table 5 (share of slot processing time per task)",
        "UL: decode >60%, chan-est >8%, equalization >5%, demod >6%; DL: encode >40%, precode >15%, mod >10%",
    );

    let cell = CellConfig::tdd_100mhz();
    let cost = CostModel::new();
    let mut rng = Rng::new(seed);
    let slots = len.profiling_slots() * 2;

    let mut out = Vec::new();
    for (dir, dir_name, bounds) in [
        (
            SlotDirection::Uplink,
            "uplink",
            vec![
                (TaskKind::LdpcDecode, 60.0),
                (TaskKind::ChannelEstimation, 8.0),
                (TaskKind::Equalization, 5.0),
                (TaskKind::Demodulation, 6.0),
            ],
        ),
        (
            SlotDirection::Downlink,
            "downlink",
            vec![
                (TaskKind::LdpcEncode, 40.0),
                (TaskKind::Precoding, 15.0),
                (TaskKind::Modulation, 10.0),
            ],
        ),
    ] {
        // Accumulate expected cost per kind over busy traffic-like slots.
        let mut per_kind = vec![0.0f64; TaskKind::ALL.len()];
        let mut total = 0.0;
        for slot in 0..slots {
            let mut wl = random_workload(&cell, dir, &mut rng);
            if wl.ues.is_empty() {
                continue;
            }
            // Table 5 reflects loaded slots; scale allocations up toward
            // the busy end by keeping the random draw as-is (the profiler
            // spans the space) but weighting by work below.
            wl.direction = dir;
            let dag = build_dag(&cell, 0, slot as u64, Nanos::ZERO, &wl);
            for node in &dag.nodes {
                let us = cost
                    .expected_cost(node.task.kind, &node.task.params)
                    .as_micros_f64();
                per_kind[node.task.kind.index()] += us;
                total += us;
            }
        }

        println!("\n{dir_name} — share of slot processing time:");
        println!("{:<18} {:>10} {:>14}", "task", "share", "paper bound");
        let mut kinds: Vec<(TaskKind, f64)> = TaskKind::ALL
            .iter()
            .filter(|k| k.direction() == dir)
            .map(|&k| (k, per_kind[k.index()] / total))
            .collect();
        kinds.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (k, share) in &kinds {
            let bound = bounds
                .iter()
                .find(|(bk, _)| bk == k)
                .map(|(_, b)| *b)
                .unwrap_or(0.0);
            let marker = if bound > 0.0 {
                if share * 100.0 > bound {
                    " (> bound ok)"
                } else {
                    " (BELOW paper bound!)"
                }
            } else {
                ""
            };
            println!(
                "{:<18} {:>10} {:>13}%{marker}",
                k.name(),
                pct(*share),
                bound
            );
            out.push(Share {
                task: k.name().into(),
                direction: dir_name.into(),
                share_pct: share * 100.0,
                paper_bound_pct: bound,
            });
        }
    }

    write_json("table05_breakdown", &out);
}
