//! Fig. 13 — Concordia's parameterized predictor vs the conventional
//! single-value pWCET method (§6.3).
//!
//! Paper claims reproduced here:
//! * Concordia's quantile decision tree reclaims more CPU than the
//!   EVT-based single-value pWCET of [23] (up to ~20 % more reclaimed
//!   cycles in the paper), because the single value must be sized for the
//!   worst input and is therefore pessimistic for the typical slot;
//! * the latency benefit of the pessimistic model is marginal (~5 µs).

use concordia_bench::{banner, pct, quantile_or_nan, write_json, RunLength};
use concordia_core::{run_experiment, Colocation, PredictorChoice, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::Nanos;
use serde::Serialize;

#[derive(Serialize)]
struct Fig13Row {
    predictor: String,
    load: f64,
    reclaimed_pct: f64,
    p9999_us: f64,
    p99999_us: f64,
    reliability: f64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 13 (quantile DT vs conventional single-value pWCET, 20MHz config)",
        "Concordia reclaims up to ~20% more CPU than pWCET; pWCET's latency benefit is ~5us",
    );

    let loads = [0.05, 0.25, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();
    println!(
        "\n{:<12} {:>6} {:>12} {:>12} {:>13} {:>12}",
        "predictor", "load", "reclaimed", "p99.99(us)", "p99.999(us)", "reliability"
    );
    for pred in [PredictorChoice::QuantileDt, PredictorChoice::PwcetEvt] {
        for &load in &loads {
            let mut cfg = SimConfig::paper_20mhz();
            cfg.duration = Nanos::from_secs(len.online_secs());
            cfg.profiling_slots = len.profiling_slots();
            cfg.predictor = pred;
            cfg.load = load;
            cfg.colocation = Colocation::Single(WorkloadKind::Redis);
            cfg.seed = seed;
            let r = run_experiment(cfg);
            println!(
                "{:<12} {:>5.0}% {:>12} {:>12.0} {:>13.0} {:>12.6}",
                r.predictor,
                load * 100.0,
                pct(r.metrics.reclaimed_fraction),
                quantile_or_nan(r.metrics.p9999_latency_us),
                quantile_or_nan(r.metrics.p99999_latency_us),
                r.metrics.reliability
            );
            rows.push(Fig13Row {
                predictor: r.predictor.clone(),
                load,
                reclaimed_pct: r.metrics.reclaimed_fraction * 100.0,
                p9999_us: quantile_or_nan(r.metrics.p9999_latency_us),
                p99999_us: quantile_or_nan(r.metrics.p99999_latency_us),
                reliability: r.metrics.reliability,
            });
        }
        println!();
    }

    // Summary deltas per load.
    println!("delta (QDT - pWCET):");
    for &load in &loads {
        let q = rows
            .iter()
            .find(|r| r.predictor == "quantile_dt" && r.load == load)
            .unwrap();
        let p = rows
            .iter()
            .find(|r| r.predictor == "pwcet_evt" && r.load == load)
            .unwrap();
        println!(
            "  load {:>3.0}%: +{:.1} pp reclaimed, {:+.0}us p99.99",
            load * 100.0,
            q.reclaimed_pct - p.reclaimed_pct,
            q.p9999_us - p.p9999_us
        );
    }

    write_json("fig13_pwcet", &rows);
}
