//! Fig. 9 — latency effects of cache interference from a collocated
//! workload (Redis) for 2 × 100 MHz cells (§6.2).
//!
//! Paper claims reproduced here: vanilla FlexRAN suffers ~+25 % stall
//! cycles per instruction (and ~+15 % L1 misses, ~+20 % LLC loads) under
//! Redis relative to the isolated baseline, while Concordia limits the
//! increase to < 2 % — because it holds a small stable core set whose
//! caches stay warm, instead of churning cores through yield/reacquire.

use concordia_bench::{banner, write_json, RunLength};
use concordia_core::{run_experiment, Colocation, SchedulerChoice, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::Nanos;
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Row {
    scheduler: String,
    stall_cycles_pct: f64,
    l1_miss_pct: f64,
    llc_loads_pct: f64,
    wake_events: u64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 9 (cache-interference counters, 2x100MHz cells + Redis)",
        "FlexRAN: ~+25% stall cycles/instr under Redis; Concordia: <+2% (stable warm cores)",
    );

    let mut rows = Vec::new();
    println!(
        "\n{:<12} {:>16} {:>16} {:>16} {:>10}",
        "scheduler", "stalls/instr +%", "L1 miss +%", "LLC loads +%", "wakes"
    );
    for sched in [SchedulerChoice::concordia(), SchedulerChoice::FlexRan] {
        let mut cfg = SimConfig::paper_100mhz();
        cfg.cores = 8; // the paper's Fig. 9/10 experiments use 8 pool cores
        cfg.duration = Nanos::from_secs(len.online_secs());
        cfg.profiling_slots = len.profiling_slots();
        cfg.scheduler = sched;
        cfg.colocation = Colocation::Single(WorkloadKind::Redis);
        cfg.seed = seed;
        let r = run_experiment(cfg);
        // The counter model reports the stall increase; L1/LLC move
        // proportionally (see concordia-platform::cache).
        let stall = r.metrics.stall_cycles_pct;
        println!(
            "{:<12} {:>16.1} {:>16.1} {:>16.1} {:>10}",
            r.scheduler,
            stall,
            stall * 0.6,
            stall * 0.8,
            r.metrics.wake_events
        );
        rows.push(Fig9Row {
            scheduler: r.scheduler.clone(),
            stall_cycles_pct: stall,
            l1_miss_pct: stall * 0.6,
            llc_loads_pct: stall * 0.8,
            wake_events: r.metrics.wake_events,
        });
    }

    let flex = rows.iter().find(|r| r.scheduler == "flexran").unwrap();
    let conc = rows.iter().find(|r| r.scheduler == "concordia").unwrap();
    println!(
        "\nratio: FlexRAN suffers {:.1}x the stall-cycle increase of Concordia",
        flex.stall_cycles_pct / conc.stall_cycles_pct.max(0.01)
    );

    write_json("fig09_cache", &rows);
}
