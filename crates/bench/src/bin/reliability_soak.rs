//! Long-run reliability soak — the §6 validation run.
//!
//! The paper validates the 99.999 % claim with 8-hour tests under the
//! mixed workload (1.15×10⁸–2.0×10⁸ scheduling events) and reports that
//! "no performance or reliability differences were observed between the
//! long and the short tests". This harness runs the same mixed-workload
//! soak for as long as you ask (default 60 s simulated; pass a number of
//! seconds as the first positional argument) and reports reliability at
//! 10-second checkpoints so drift would be visible.
//!
//! Example: `cargo run --release -p concordia-bench --bin reliability_soak -- 300`

use concordia_bench::{banner, quantile_or_nan, write_json};
use concordia_core::{Colocation, SimConfig, Simulation};
use concordia_ran::Nanos;
use serde::Serialize;

#[derive(Serialize)]
struct SoakRow {
    config: String,
    simulated_secs: u64,
    dags: usize,
    violations: u64,
    reliability: f64,
    p99999_us: f64,
}

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let seed = concordia_bench::seed_from_args();
    banner(
        "Reliability soak (mixed workload, long run)",
        "no reliability drift between short and long tests (the paper's 8-hour validation)",
    );

    let mut rows = Vec::new();
    for (name, template) in [
        ("20MHz x7 / 8 cores", SimConfig::paper_20mhz()),
        ("100MHz x2 / 9 cores", {
            let mut c = SimConfig::paper_100mhz();
            c.cores = 9; // the Fig. 12 five-nines operating point
            c
        }),
    ] {
        let mut cfg = template;
        cfg.duration = Nanos::from_secs(secs);
        cfg.colocation = Colocation::Mix;
        cfg.profiling_slots = 3_000;
        cfg.seed = seed;
        println!("\n{name}: {secs}s simulated, mixed workload");
        let report = Simulation::new(cfg).run();
        println!(
            "  dags {} | violations {} | reliability {:.7} | p99.999 {:.0}us",
            report.metrics.dags,
            report.metrics.violations,
            report.metrics.reliability,
            quantile_or_nan(report.metrics.p99999_latency_us)
        );
        rows.push(SoakRow {
            config: name.into(),
            simulated_secs: secs,
            dags: report.metrics.dags,
            violations: report.metrics.violations,
            reliability: report.metrics.reliability,
            p99999_us: quantile_or_nan(report.metrics.p99999_latency_us),
        });
    }

    write_json("reliability_soak", &rows);
}
