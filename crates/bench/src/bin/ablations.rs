//! Ablations of Concordia's design choices (DESIGN.md §4).
//!
//! 1. Leaf statistic: max-of-buffer (Algorithm 2) vs an upper quantile —
//!    the miss-rate / pessimism trade-off.
//! 2. Scheduler tick: 5/20/100/500 µs — why the paper's 20 µs is the sweet
//!    spot between reaction time and overhead-free stability.
//! 3. Online leaf updates on vs frozen offline model — the §4.2 online
//!    phase's value under interference.
//! 4. Tree shape: depth/min-leaf sweep — prediction tightness vs
//!    generalization.

use concordia_bench::{banner, pct, write_json, RunLength};
use concordia_core::profile::profile;
use concordia_core::{run_experiment, Colocation, SchedulerChoice, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_predictor::qdt::{LeafStatistic, QuantileDecisionTree};
use concordia_predictor::tree::TreeConfig;
use concordia_predictor::WcetPredictor;
use concordia_ran::cost::CostModel;
use concordia_ran::features::{extract, handpicked};
use concordia_ran::task::TaskKind;
use concordia_ran::transport::Mcs;
use concordia_ran::{CellConfig, Nanos, TaskParams};
use concordia_sched::concordia::ConcordiaConfig;
use concordia_stats::rng::Rng;
use serde::Serialize;

#[derive(Serialize, Default)]
struct AblationResults {
    leaf_stat: Vec<(String, f64, f64)>, // (stat, miss%, avg pred us)
    tick: Vec<(u64, f64, f64)>,         // (tick us, reliability, reclaimed%)
    online: Vec<(String, f64)>,         // (mode, miss%)
    tree_shape: Vec<(u32, usize, f64, f64)>, // (depth, min_leaf, miss%, avg pred us)
}

fn decode_eval(
    model: &mut dyn WcetPredictor,
    cost: &CostModel,
    inflate: f64,
    observe: bool,
    n: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = Rng::new(seed);
    let (mut misses, mut preds) = (0u64, 0.0f64);
    for _ in 0..n {
        let n_cbs = rng.range_u64(1, 15) as u32;
        let mcs = Mcs::from_index(rng.range_u64(4, 27) as u8);
        let p = TaskParams {
            n_cbs,
            cb_bits: 8448,
            tb_bits: n_cbs * 8448,
            mcs_index: mcs.index,
            modulation_order: mcs.modulation_order,
            code_rate: mcs.code_rate,
            snr_db: mcs.required_snr_db() + rng.range_f64(-2.0, 10.0),
            layers: 2,
            prbs: 60,
            pool_cores: rng.range_u64(1, 8) as u32,
            ..TaskParams::default()
        };
        let runtime = cost
            .sample_runtime(TaskKind::LdpcDecode, &p, inflate, &mut rng)
            .as_micros_f64();
        let x = extract(&p);
        let pred = model.predict_us(&x);
        preds += pred;
        if runtime > pred {
            misses += 1;
        }
        if observe {
            model.observe(&x, runtime);
        }
    }
    (misses as f64 / n as f64 * 100.0, preds / n as f64)
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Ablations (leaf statistic, tick, online updates, tree shape)",
        "why max-of-buffer leaves, a 20us tick and frozen-tree online buffers are the right choices",
    );
    let mut results = AblationResults::default();

    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let dataset = profile(&cell, &cost, len.profiling_slots() * 2, 8, seed);
    let decode = dataset.samples(TaskKind::LdpcDecode);
    let feats: Vec<usize> = handpicked(TaskKind::LdpcDecode)
        .iter()
        .map(|&f| f as usize)
        .collect();
    let eval_n = match len {
        concordia_bench::RunLength::Quick => 20_000,
        _ => 100_000,
    };

    // ---- 1. leaf statistic ----
    println!("\n[1] leaf statistic (decode task, isolated):");
    println!(
        "{:<16} {:>10} {:>14}",
        "statistic", "miss %", "avg pred (us)"
    );
    for (name, stat) in [
        ("max".to_string(), LeafStatistic::Max),
        ("q0.999".to_string(), LeafStatistic::Quantile(0.999)),
        ("q0.99".to_string(), LeafStatistic::Quantile(0.99)),
        ("q0.9".to_string(), LeafStatistic::Quantile(0.9)),
    ] {
        let mut m =
            QuantileDecisionTree::fit_with(decode, &feats, &TreeConfig::default(), stat, 1.0);
        let (miss, avg) = decode_eval(&mut m, &cost, 1.0, true, eval_n, seed ^ 1);
        println!("{name:<16} {miss:>10.4} {avg:>14.1}");
        results.leaf_stat.push((name, miss, avg));
    }
    println!("(max pays pessimism for coverage — the Algorithm 2 choice)");

    // ---- 2. scheduler tick ----
    println!("\n[2] scheduler tick (20MHz config + Redis, 75% load):");
    println!(
        "{:<10} {:>12} {:>12}",
        "tick(us)", "reliability", "reclaimed"
    );
    for tick_us in [5u64, 20, 100, 500] {
        let mut cfg = SimConfig::paper_20mhz();
        cfg.duration = Nanos::from_secs(len.online_secs().min(6));
        cfg.profiling_slots = len.profiling_slots();
        cfg.load = 0.75;
        cfg.colocation = Colocation::Single(WorkloadKind::Redis);
        cfg.scheduler = SchedulerChoice::Concordia(ConcordiaConfig {
            tick: Nanos::from_micros(tick_us),
            ..ConcordiaConfig::default()
        });
        cfg.seed = seed;
        let r = run_experiment(cfg);
        println!(
            "{tick_us:<10} {:>12.6} {:>12}",
            r.metrics.reliability,
            pct(r.metrics.reclaimed_fraction)
        );
        results.tick.push((
            tick_us,
            r.metrics.reliability,
            r.metrics.reclaimed_fraction * 100.0,
        ));
    }

    // ---- 3. online updates ----
    println!("\n[3] online leaf updates under interference (factor ~1.3):");
    for (name, observe) in [("online", true), ("frozen", false)] {
        let mut m = QuantileDecisionTree::fit(decode, &feats, &TreeConfig::default());
        let (miss, _) = decode_eval(&mut m, &cost, 1.3, observe, eval_n, seed ^ 2);
        println!("  {name:<8} miss {miss:.4}%");
        results.online.push((name.to_string(), miss));
    }
    println!("(the online phase absorbs the interference shift — §4.2)");

    // ---- 4. tree shape ----
    println!("\n[4] tree shape (depth x min-leaf):");
    println!(
        "{:>6} {:>9} {:>10} {:>14}",
        "depth", "min_leaf", "miss %", "avg pred (us)"
    );
    for (depth, min_leaf) in [(2u32, 200usize), (4, 100), (8, 50), (12, 20)] {
        let cfgt = TreeConfig {
            max_depth: depth,
            min_leaf,
            n_thresholds: 16,
        };
        let mut m = QuantileDecisionTree::fit(decode, &feats, &cfgt);
        let (miss, avg) = decode_eval(&mut m, &cost, 1.0, true, eval_n, seed ^ 3);
        println!("{depth:>6} {min_leaf:>9} {miss:>10.4} {avg:>14.1}");
        results.tree_shape.push((depth, min_leaf, miss, avg));
    }
    println!("(shallow trees are pessimistic; very deep ones overfit leaves with\n few samples — the default depth-8/min-50 balances both)");

    write_json("ablations", &results);
}
