//! Chaos soak — deterministic fault injection across every fault class,
//! Concordia vs the FlexRAN baseline.
//!
//! Each experiment injects exactly one fault window (drawn
//! deterministically from the seed) into an otherwise healthy run and
//! reports reliability before, during and after the window plus the time
//! the pool needed to stop violating once the fault cleared. Two claims
//! are exercised:
//!
//! * **graceful degradation** — no fault class can panic the simulator:
//!   cores disappear mid-task and their work is requeued, offloads with
//!   the FPGA gone (or timing out) fall back to the CPU decode path, and a
//!   worker panic inside the parallel runner is contained to its slot;
//! * **recovery** — with the degraded-mode scheduling additions (surviving
//!   -core reallocation, queue-overload critical stage, misprediction
//!   guard), Concordia's post-window reliability returns to the pre-fault
//!   level.
//!
//! The whole run is bit-reproducible: the same `--seed` yields the same
//! fault windows, the same per-experiment outcomes and byte-identical
//! JSON.
//!
//! Example: `cargo run -p concordia-bench --release --bin chaos_soak -- --seed 1 --load 0.7`
//!
//! `--trace` turns the ring-buffer recorder on for every experiment. The
//! rows are derived from metrics only, so the JSON stays byte-identical
//! with tracing on or off — CI runs the soak both ways and compares.

use concordia_bench::{banner, bool_flag, f64_flag, write_json, RunLength};
use concordia_core::runner::run_parallel_results;
use concordia_core::{Colocation, ExperimentReport, SchedulerChoice, SimConfig};
use concordia_platform::faults::{FaultKind, FaultPlan};
use concordia_platform::trace::TraceConfig;
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::Nanos;
use concordia_sched::ConcordiaConfig;
use serde::Serialize;

const CLASSES: [FaultKind; 7] = [
    FaultKind::CoreOffline,
    FaultKind::CoreStall,
    FaultKind::AccelOutage,
    FaultKind::AccelTimeout,
    FaultKind::PredictorBias,
    FaultKind::StormAmplification,
    FaultKind::TrafficSurge,
];

#[derive(Serialize)]
struct ChaosRow {
    scheduler: String,
    fault: String,
    window_start_us: f64,
    window_end_us: f64,
    severity: f64,
    dags: usize,
    reliability_before: f64,
    reliability_during: f64,
    reliability_after: f64,
    recovery_us: f64,
    recovered: bool,
    cores_failed: u64,
    offload_fallbacks: u64,
    tasks_requeued: u64,
}

fn row(report: &ExperimentReport, fault: FaultKind) -> ChaosRow {
    let w = report
        .fault
        .as_ref()
        .and_then(|f| f.windows.first())
        .expect("chaos config always resolves one fault window");
    ChaosRow {
        scheduler: report.scheduler.clone(),
        fault: fault.name().to_string(),
        window_start_us: w.start_us,
        window_end_us: w.end_us,
        severity: w.severity,
        dags: report.metrics.dags,
        reliability_before: w.reliability_before,
        reliability_during: w.reliability_during,
        reliability_after: w.reliability_after,
        recovery_us: w.recovery_us,
        recovered: w.recovered(),
        cores_failed: report.metrics.cores_failed,
        offload_fallbacks: report.metrics.offload_fallbacks,
        tasks_requeued: report.metrics.tasks_requeued,
    }
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    let load = f64_flag("--load", 0.6).clamp(0.0, 1.0);
    let tracing = bool_flag("--trace");
    banner(
        "Chaos soak (fault injection across the pool, scheduler and accelerator path)",
        "no fault class panics the simulator; Concordia's reliability recovers once the fault clears",
    );

    let secs = match len {
        RunLength::Quick => 1,
        RunLength::Standard => 3,
        RunLength::Long => 10,
    };
    let dur = Nanos::from_secs(secs);
    let profiling = match len {
        RunLength::Quick => 300,
        RunLength::Standard => 600,
        RunLength::Long => 2_000,
    };

    // Concordia with the degraded-mode overload detector armed; FlexRAN as
    // the baseline that shares the same platform-level fallbacks but has no
    // degraded-mode scheduling.
    let concordia = SchedulerChoice::Concordia(ConcordiaConfig {
        overload_wait: Nanos::from_micros(300),
        ..ConcordiaConfig::default()
    });
    let schedulers = [
        ("concordia", concordia),
        ("flexran", SchedulerChoice::FlexRan),
    ];

    let mut configs = Vec::new();
    for (_, sched) in &schedulers {
        for kind in CLASSES {
            // The Fig. 11 stress point — 100 MHz x 2 cells on an 8-core
            // pool with Redis collocated — where FlexRAN is already at the
            // edge of 4 nines, so fault windows visibly move reliability.
            let mut cfg = SimConfig::paper_100mhz();
            cfg.cores = 8;
            cfg.scheduler = *sched;
            cfg.duration = dur;
            cfg.profiling_slots = profiling;
            cfg.load = load;
            cfg.colocation = Colocation::Single(WorkloadKind::Redis);
            // The accelerator faults need an engine to lose; for the CPU
            // -side faults the FPGA stays off so decode keeps the pool
            // loaded enough for the windows to bite.
            cfg.fpga = matches!(kind, FaultKind::AccelOutage | FaultKind::AccelTimeout);
            cfg.seed = seed;
            cfg.faults = FaultPlan::chaos(&[kind], dur);
            cfg.trace = tracing.then(TraceConfig::default);
            configs.push(cfg);
        }
    }
    // One deliberately broken configuration (an impossible pool): its
    // worker panic must be contained to its slot, not sink the sweep.
    let mut broken = configs[0].clone();
    broken.cores = 0;
    configs.push(broken);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!(
        "\n{} experiments ({} fault classes x {} schedulers + 1 broken config), {}s simulated each, load {:.0}%, seed {}",
        configs.len(),
        CLASSES.len(),
        schedulers.len(),
        secs,
        load * 100.0,
        seed
    );

    // The broken config's panic is expected; keep its default-hook noise
    // out of the output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let results = run_parallel_results(configs, workers);
    std::panic::set_hook(prev_hook);

    println!(
        "\n{:<10} {:<20} {:>14} {:>9} {:>9} {:>9} {:>11} {:>10}",
        "scheduler",
        "fault",
        "window(us)",
        "rel.pre",
        "rel.dur",
        "rel.post",
        "recover(us)",
        "recovered"
    );
    let mut rows = Vec::new();
    let mut concordia_recovered = 0usize;
    let mut concordia_total = 0usize;
    let mut iter = results.iter();
    for (name, _) in &schedulers {
        for kind in CLASSES {
            let outcome = iter.next().expect("one result per config");
            match outcome {
                Ok(report) => {
                    let r = row(report, kind);
                    println!(
                        "{:<10} {:<20} {:>6.0}-{:>7.0} {:>9.5} {:>9.5} {:>9.5} {:>11.0} {:>10}",
                        r.scheduler,
                        r.fault,
                        r.window_start_us,
                        r.window_end_us,
                        r.reliability_before,
                        r.reliability_during,
                        r.reliability_after,
                        r.recovery_us,
                        if r.recovered { "yes" } else { "NO" }
                    );
                    if *name == "concordia" {
                        concordia_total += 1;
                        if r.recovered {
                            concordia_recovered += 1;
                        }
                    }
                    rows.push(r);
                }
                Err(failure) => {
                    println!("{:<10} {:<20} FAILED: {}", name, kind.name(), failure);
                }
            }
        }
    }

    let broken_outcome = iter.next().expect("the broken config has a slot");
    let contained = broken_outcome.is_err();
    match broken_outcome {
        Err(f) => println!(
            "\nworker panic contained to its slot (seed {}): {}",
            f.seed, f.message
        ),
        Ok(_) => println!("\nWARNING: the cores=0 config unexpectedly produced a report"),
    }

    println!(
        "\nConcordia recovered in {concordia_recovered}/{concordia_total} fault classes \
         (post-window reliability back at the pre-fault level)"
    );

    write_json(
        "chaos_soak",
        &serde_json::json!({
            "seed": seed,
            "simulated_secs": secs,
            "load": load,
            "rows": rows,
            "worker_panic_contained": contained,
            "concordia_recovered": concordia_recovered,
            "concordia_fault_classes": concordia_total,
        }),
    );
}
