//! Fig. 4 — vRAN CPU utilization and interference effects (§2.2/§2.3
//! motivation).
//!
//! Paper claims reproduced here:
//! * Fig. 4a: the minimum pools for the three motivation configurations
//!   (UL-only × 3 cells, TDD × 1, TDD × 2) are small, yet their average
//!   CPU utilization stays ≤ ~42 % even at peak traffic;
//! * Fig. 4b: with the vanilla (FlexRAN) stack, collocating Nginx or Redis
//!   pushes the 99.99 % slot-processing latency past the deadline, while
//!   the isolated vRAN meets it.

use concordia_bench::{banner, pct, quantile_or_nan, write_json, RunLength};
use concordia_core::experiments::find_min_cores;
use concordia_core::{run_experiment, Colocation, SchedulerChoice, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::{CellConfig, Nanos};
use serde::Serialize;

#[derive(Serialize)]
struct Fig4aRow {
    config: String,
    min_cores: u32,
    avg_cpu_util_pct: f64,
}

#[derive(Serialize)]
struct Fig4bRow {
    config: String,
    colocation: String,
    p9999_latency_us: f64,
    deadline_us: f64,
    violates: bool,
}

fn motivation_configs() -> Vec<(String, SimConfig)> {
    let mk = |cell: CellConfig, n_cells: u32| SimConfig {
        cell,
        n_cells,
        cell_stagger: true,
        cores: 8,
        scheduler: SchedulerChoice::Dedicated,
        predictor: concordia_core::PredictorChoice::QuantileDt,
        colocation: Colocation::Isolated,
        load: 1.0,
        duration: Nanos::from_secs(2),
        seed: 1,
        deadline_override: None,
        fpga: false,
        profiling_slots: 300,
        online_updates: true,
        mac_in_pool: false,
        // Fig. 4a sizes pools for peak traffic.
        peak_provisioning: true,
        faults: concordia_platform::faults::FaultPlan::none(),
        supervisor: None,
        trace: None,
        reconfig: None,
        engine: concordia_platform::events::EngineChoice::default(),
        pool: concordia_platform::arch::PoolArchChoice::default(),
    };
    vec![
        (
            "UL only (3 cells)".into(),
            mk(CellConfig::ul_only_20mhz(), 3),
        ),
        ("TDD (1 cell)".into(), mk(CellConfig::tdd_100mhz(), 1)),
        ("TDD (2 cells)".into(), mk(CellConfig::tdd_100mhz(), 2)),
    ]
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 4 (vRAN CPU utilization and interference effects)",
        "min pools run at <=42% utilization; vanilla stack + Nginx/Redis breaches the 99.99% deadline",
    );

    let dur = Nanos::from_secs(len.online_secs().min(10));
    let slots = len.profiling_slots() / 2;

    // ---- Fig. 4a: minimum cores + average utilization at peak traffic ----
    println!("\nFig. 4a — minimum pool and average CPU utilization (peak traffic):");
    println!(
        "{:<20} {:>10} {:>14}  (paper: 4/42%, 5/38%, 12/33%)",
        "config", "# cores", "avg CPU util"
    );
    let mut fig4a = Vec::new();
    for (name, template) in motivation_configs() {
        let mut t = template;
        t.duration = dur;
        t.profiling_slots = slots;
        t.seed = seed;
        let (min_cores, _) =
            find_min_cores(&t, 1, 16, 0.9999).expect("a feasible pool size exists");
        // Measure utilization at the minimum pool.
        let report = run_experiment(SimConfig {
            cores: min_cores,
            ..t.clone()
        });
        let util = report.metrics.pool_utilization;
        println!("{name:<20} {min_cores:>10} {:>14}", pct(util));
        fig4a.push(Fig4aRow {
            config: name,
            min_cores,
            avg_cpu_util_pct: util * 100.0,
        });
    }

    // ---- Fig. 4b: vanilla-stack tail latency under colocation ----
    println!("\nFig. 4b — 99.99% slot latency, vanilla FlexRAN sharing (8 cores):");
    println!(
        "{:<20} {:<10} {:>12} {:>12} {:>9}",
        "config", "colocated", "p99.99(us)", "deadline", "violates"
    );
    let mut fig4b = Vec::new();
    for (name, template) in motivation_configs() {
        for colo in [
            Colocation::Isolated,
            Colocation::Single(WorkloadKind::Nginx),
            Colocation::Single(WorkloadKind::Redis),
        ] {
            let mut t = template.clone();
            t.duration = dur;
            t.profiling_slots = slots;
            t.seed = seed;
            t.scheduler = SchedulerChoice::FlexRan;
            t.colocation = colo;
            // The motivation experiment uses the 1.5 ms eMBB deadline.
            t.deadline_override = Some(Nanos::from_micros(1500));
            let r = run_experiment(t);
            let violates = quantile_or_nan(r.metrics.p9999_latency_us) > r.deadline_us;
            println!(
                "{name:<20} {:<10} {:>12.0} {:>12.0} {:>9}",
                r.colocation,
                quantile_or_nan(r.metrics.p9999_latency_us),
                r.deadline_us,
                if violates { "YES" } else { "no" }
            );
            fig4b.push(Fig4bRow {
                config: name.clone(),
                colocation: r.colocation.clone(),
                p9999_latency_us: quantile_or_nan(r.metrics.p9999_latency_us),
                deadline_us: r.deadline_us,
                violates,
            });
        }
    }

    write_json(
        "fig04_motivation",
        &serde_json::json!({"fig4a": fig4a, "fig4b": fig4b}),
    );
}
