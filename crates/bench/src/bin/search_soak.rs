//! Adversarial-search soak — the end-to-end demonstration of the
//! counterexample pipeline (find → shrink → replay), plus the negative
//! control and the determinism gate.
//!
//! Four properties are demonstrated:
//!
//! * **find** — a planted kernel-storm + core-loss schedule against a
//!   4-cell 100 MHz deployment on 6 cores breaks the 99.999 % SLA, and
//!   the search (seeded with the planted scenario as its corpus) reports
//!   it as a counterexample;
//! * **shrink** — the planted 2-window, 400 ms scenario is shrunk to a
//!   strictly smaller minimal counterexample: fewer fault windows *and*
//!   a shorter run (the storm window is a red herring — the core loss
//!   alone already sinks the SLA at half the duration);
//! * **replay** — the minimal counterexample's repro artifact, round-
//!   tripped through JSON exactly as `concordia --replay` does, re-runs
//!   to byte-identical failing reports (fingerprint match);
//! * **determinism** — the whole SearchReport is a pure function of
//!   `(config, strategy, seed)`: `--jobs 1` and `--jobs $(nproc)`
//!   produce byte-identical JSON (checked in-process here; CI also runs
//!   the binary twice and diffs the soak JSON);
//!
//! and one negative control: the same search against a generously
//! provisioned 20 MHz deployment finds nothing.
//!
//! `--check` exits non-zero when any property fails (CI gate). Timing
//! figures go to `BENCH_search.json` in the working directory, separate
//! from the deterministic soak JSON.
//!
//! Example:
//! `cargo run -p concordia-bench --release --bin search_soak -- --quick --check`

use concordia_bench::{banner, bool_flag, jobs_from_args, seed_from_args, write_json, RunLength};
use concordia_core::runner::ParallelEval;
use concordia_core::SimConfig;
use concordia_platform::faults::{FaultKind, FaultPlan, FaultSpec};
use concordia_ran::Nanos;
use concordia_search::{
    replay, run_search, Oracle, ReproArtifact, Scenario, SearchReport, SearchSettings, SearchSpace,
    Strategy,
};

/// The overloaded deployment the planted counterexample breaks: 4 TDD
/// 100 MHz cells on 6 cores at full load. Clean runs pass; the planted
/// fault schedule does not.
fn planted_base(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_100mhz();
    cfg.n_cells = 4;
    cfg.cores = 6;
    cfg.load = 1.0;
    cfg.duration = Nanos::from_millis(400);
    cfg.profiling_slots = 300;
    cfg.seed = seed;
    cfg
}

/// The planted schedule: a 3x kernel-interference storm overlapping a
/// half-pool core loss. Two windows, full 400 ms run.
fn planted_scenario(base: &SimConfig) -> Scenario {
    Scenario {
        load: base.load,
        n_cells: base.n_cells,
        cores: base.cores,
        duration: base.duration,
        faults: FaultPlan {
            specs: vec![
                FaultSpec::fixed(
                    FaultKind::StormAmplification,
                    Nanos::from_millis(120),
                    Nanos::from_millis(120),
                    3.0,
                ),
                FaultSpec::fixed(
                    FaultKind::CoreOffline,
                    Nanos::from_millis(150),
                    Nanos::from_millis(100),
                    0.5,
                ),
            ],
        },
        reconfig: None,
    }
}

fn sla() -> Oracle {
    Oracle::Sla {
        min_reliability: 0.99999,
    }
}

fn run_planted(base: &SimConfig, settings: &SearchSettings, jobs: usize) -> SearchReport {
    let space = SearchSpace::around(base);
    let mut eval = ParallelEval::new(jobs);
    run_search(
        base,
        &space,
        &sla(),
        Strategy::Random { batch: 4 },
        settings,
        &mut eval,
    )
}

fn main() {
    let len = RunLength::from_args();
    let seed = seed_from_args();
    let jobs = jobs_from_args();
    let check = bool_flag("--check");
    banner(
        "Adversarial search soak (find -> shrink -> replay)",
        "a planted storm+core-loss schedule breaking the SLA is found, shrunk \
         to a strictly smaller minimal counterexample, and replays \
         byte-identically for any --jobs",
    );

    // The planted scenario's physics are pinned (400 ms at C=4 on 6
    // cores), so run length scales only the negative control's budget.
    let clean_budget = match len {
        RunLength::Quick => 6,
        RunLength::Standard => 12,
        RunLength::Long => 24,
    };

    let base = planted_base(seed);
    let planted = planted_scenario(&base);
    let settings = SearchSettings {
        seed,
        budget: 8,
        shrink_budget: 64,
        max_counterexamples: 1,
        corpus: vec![planted.clone()],
    };
    println!(
        "\nplanted: {} cells x {} cores (100 MHz), seed {seed}, {jobs} jobs",
        base.n_cells, base.cores
    );
    println!("  scenario: {}", planted.one_liner());

    let started = std::time::Instant::now();
    let mut failures: Vec<String> = Vec::new();

    // ---- 1+2. Find and shrink the planted counterexample. ------------
    let report = run_planted(&base, &settings, jobs);
    println!("\n{}", report.one_liner());
    let ce = match report.counterexamples.first() {
        Some(ce) => {
            println!("  found:   {} ({})", ce.found.one_liner(), ce.found_detail);
            println!(
                "  minimal: {} ({})",
                ce.minimal.one_liner(),
                ce.minimal_detail
            );
            for step in &ce.shrink_trace {
                println!("    round {}: {}", step.round, step.action);
            }
            if ce.found != planted {
                failures.push("the counterexample is not the planted scenario".into());
            }
            let planted_windows = planted.faults.specs.len();
            if ce.minimal.faults.specs.len() >= planted_windows {
                failures.push(format!(
                    "shrink kept all {planted_windows} fault windows (wanted strictly fewer)"
                ));
            }
            if ce.minimal.duration >= planted.duration {
                failures.push(format!(
                    "shrink kept the full {:.0} ms run (wanted strictly shorter)",
                    planted.duration.as_millis_f64()
                ));
            }
            if ce.minimal_size >= ce.found_size {
                failures.push("minimal counterexample is not smaller than the found one".into());
            }
            Some(ce.clone())
        }
        None => {
            failures.push("the planted counterexample was not found".into());
            None
        }
    };

    // ---- 3. Replay the artifact exactly as the CLI does. -------------
    let replay_outcome = ce.as_ref().map(|ce| {
        let json = ce.artifact.to_canonical_json();
        let artifact = ReproArtifact::from_json(&json).expect("own artifact is valid");
        let outcome = replay(&artifact, &mut ParallelEval::new(jobs));
        println!(
            "\nreplay: failed {} | reproduced {} | fingerprint {}",
            outcome.verdict.failed, outcome.reproduced, outcome.fingerprint
        );
        if !outcome.verdict.failed {
            failures.push("replayed minimal counterexample no longer fails".into());
        }
        if !outcome.reproduced {
            failures.push("replay did not reproduce the recorded fingerprint".into());
        }
        outcome
    });

    // ---- 4. Jobs-invariance: the report is byte-identical at 1 worker.
    let single = run_planted(&base, &settings, 1);
    let jobs_match = single.to_canonical_json() == report.to_canonical_json();
    println!(
        "determinism: --jobs 1 vs --jobs {jobs} report bytes {}",
        if jobs_match { "IDENTICAL" } else { "DIFFER" }
    );
    if !jobs_match {
        failures.push(format!(
            "report bytes differ between --jobs 1 and --jobs {jobs}"
        ));
    }

    // ---- 5. Negative control: a slack deployment yields nothing. -----
    let mut clean = SimConfig::paper_20mhz();
    clean.n_cells = 2;
    clean.cores = 8;
    clean.load = 0.5;
    clean.duration = Nanos::from_millis(300);
    clean.profiling_slots = 200;
    clean.seed = seed;
    let clean_settings = SearchSettings {
        seed,
        budget: clean_budget,
        shrink_budget: 32,
        max_counterexamples: 1,
        corpus: Vec::new(),
    };
    let clean_report = run_search(
        &clean,
        &SearchSpace::around(&clean),
        &sla(),
        Strategy::Random { batch: 4 },
        &clean_settings,
        &mut ParallelEval::new(jobs),
    );
    println!("\nnegative control: {}", clean_report.one_liner());
    if clean_report.found() {
        failures.push(format!(
            "clean config produced a counterexample: {}",
            clean_report.one_liner()
        ));
    }

    let wall = started.elapsed().as_secs_f64();
    let evaluations = report.evaluations + single.evaluations + clean_report.evaluations;

    // Deterministic soak JSON: a pure function of the seed and the
    // scenario — CI byte-compares a --jobs 1 and a --jobs $(nproc) run.
    write_json(
        "search_soak",
        &serde_json::json!({
            "seed": seed,
            "planted": planted,
            "report": report,
            "replay": replay_outcome,
            "jobs_match": jobs_match,
            "clean": clean_report,
            "failures": failures,
        }),
    );

    // Timing JSON at the repo root (the perf-trajectory artifact): wall
    // time is machine-dependent, so it stays out of the soak JSON above.
    let bench = serde_json::json!({
        "bench": "search",
        "wall_s": wall,
        "evaluations": evaluations,
        "evals_per_sec": evaluations as f64 / wall.max(1e-9),
        "counterexamples": report.counterexamples.len(),
        "shrink_rounds": ce.as_ref().map_or(0, |ce| ce.shrink_trace.len()),
    });
    std::fs::write(
        "BENCH_search.json",
        serde_json::to_string_pretty(&bench).expect("serialize bench"),
    )
    .expect("write BENCH_search.json");
    println!("[timing written to BENCH_search.json]");

    if failures.is_empty() {
        println!("\nsearch soak PASSED");
    } else {
        println!("\nsearch soak FAILED:");
        for f in &failures {
            println!("  - {f}");
        }
        if check {
            std::process::exit(1);
        }
    }
}
