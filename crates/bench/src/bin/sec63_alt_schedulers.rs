//! §6.3 — schedulers that do not consider the WCET: the Shenango variant
//! and the utilization-based scheduler.
//!
//! Paper claims reproduced here:
//! * Shenango variant: no single queueing-delay threshold both meets the
//!   deadline bar and shares CPU — a small threshold (5 µs) grabs
//!   everything (no sharing), a large one (200 µs) reacts too slowly
//!   (< 99.99 % met);
//! * utilization-based scheduling underestimates bursts (trailing
//!   utilization says nothing about the slot that just arrived) and stays
//!   below 99.99 % under colocation;
//! * Concordia (prediction-driven) achieves both reliability and sharing —
//!   "having predictions of task execution times is instrumental".

use concordia_bench::{banner, pct, quantile_or_nan, write_json, RunLength};
use concordia_core::{run_experiment, Colocation, SchedulerChoice, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::Nanos;
use serde::Serialize;

#[derive(Serialize)]
struct AltRow {
    scheduler: String,
    parameter: String,
    reliability: f64,
    p9999_us: f64,
    reclaimed_pct: f64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "§6.3 (schedulers without WCET knowledge, 20MHz config + Redis)",
        "no Shenango threshold wins on both axes; utilization-based misses bursts; Concordia wins both",
    );

    let mut rows = Vec::new();
    println!(
        "\n{:<14} {:<12} {:>12} {:>12} {:>12}",
        "scheduler", "parameter", "reliability", "p99.99(us)", "reclaimed"
    );

    let mut run = |sched: SchedulerChoice, param: String| {
        let mut cfg = SimConfig::paper_20mhz();
        cfg.duration = Nanos::from_secs(len.online_secs());
        cfg.profiling_slots = len.profiling_slots();
        cfg.scheduler = sched;
        cfg.load = 0.75;
        cfg.colocation = Colocation::Single(WorkloadKind::Redis);
        cfg.seed = seed;
        let r = run_experiment(cfg);
        println!(
            "{:<14} {:<12} {:>12.6} {:>12.0} {:>12}",
            r.scheduler,
            param,
            r.metrics.reliability,
            quantile_or_nan(r.metrics.p9999_latency_us),
            pct(r.metrics.reclaimed_fraction)
        );
        rows.push(AltRow {
            scheduler: r.scheduler.clone(),
            parameter: param,
            reliability: r.metrics.reliability,
            p9999_us: quantile_or_nan(r.metrics.p9999_latency_us),
            reclaimed_pct: r.metrics.reclaimed_fraction * 100.0,
        });
    };

    for thr_us in [5u64, 25, 50, 100, 200] {
        run(
            SchedulerChoice::Shenango(Nanos::from_micros(thr_us)),
            format!("thr={thr_us}us"),
        );
    }
    for hi in [0.3, 0.6] {
        run(SchedulerChoice::Utilization(hi), format!("hi={hi}"));
    }
    run(SchedulerChoice::concordia(), "20us tick".into());

    // The §6.3 finding, checked mechanically: no alternative row may both
    // reach five nines and reclaim within 10pp of Concordia.
    let conc = rows.last().unwrap();
    let dominated = rows[..rows.len() - 1]
        .iter()
        .all(|r| r.reliability < 0.99999 || r.reclaimed_pct < conc.reclaimed_pct - 10.0);
    println!(
        "\nno WCET-blind scheduler matches Concordia on both axes: {}",
        if dominated {
            "confirmed"
        } else {
            "NOT confirmed (see rows)"
        }
    );

    write_json("sec63_alt_schedulers", &rows);
}
