//! Fig. 6 — runtime characteristics of LDPC decoding for different
//! codeblock assignments (§4.1 challenge 1).
//!
//! Paper claims reproduced here:
//! * decode runtime grows linearly with the number of codeblocks;
//! * spreading the work over 4 or 6 cores inflates the runtime by up to
//!   ~25 % relative to a single core, via CPU memory stalls (Fig. 6b);
//! * the multi-core effect is non-linear in the core count.
//!
//! The paper's experiment: 120 K LDPC decoding operations over groups of
//! 3–15 codeblocks (8448 bits each) on 1, 4 and 6 CPU cores.

use concordia_bench::{banner, write_json, RunLength};
use concordia_ran::cost::CostModel;
use concordia_ran::task::{TaskKind, TaskParams};
use concordia_ran::transport::Mcs;
use concordia_stats::rng::Rng;
use concordia_stats::summary::quantile;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    n_cbs: u32,
    cores: u32,
    mean_us: f64,
    p05_us: f64,
    p95_us: f64,
    max_us: f64,
    stalls_per_cycle: f64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 6 (LDPC decode runtime vs codeblocks x cores)",
        "runtime linear in #codeblocks; 4-6 core spreading inflates WCET by up to ~25%",
    );

    // 120K ops in the paper; scale with the preset.
    let ops_per_cell = match len {
        RunLength::Quick => 2_000,
        RunLength::Standard => 8_000,
        RunLength::Long => 40_000,
    };
    let cost = CostModel::new();
    let mut rng = Rng::new(seed);
    let mcs = Mcs::from_index(16);

    let mut grid: Vec<Cell> = Vec::new();
    println!(
        "\n{:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>14}",
        "CBs", "cores", "mean(us)", "p5(us)", "p95(us)", "max(us)", "stalls/cycle"
    );
    for &cores in &[1u32, 4, 6] {
        for &n_cbs in &[3u32, 6, 9, 12, 15] {
            let p = TaskParams {
                n_cbs,
                cb_bits: 8448,
                tb_bits: n_cbs * 8448,
                mcs_index: mcs.index,
                modulation_order: mcs.modulation_order,
                code_rate: mcs.code_rate,
                // The paper's experiment spans link conditions; a moderate
                // margin keeps iteration counts in the mid range.
                snr_db: mcs.required_snr_db() + 3.0,
                layers: 2,
                prbs: 60,
                pool_cores: cores,
                ..TaskParams::default()
            };
            let runtimes: Vec<f64> = (0..ops_per_cell)
                .map(|_| {
                    cost.sample_runtime(TaskKind::LdpcDecode, &p, 1.0, &mut rng)
                        .as_micros_f64()
                })
                .collect();
            let mean = runtimes.iter().sum::<f64>() / runtimes.len() as f64;
            let cell = Cell {
                n_cbs,
                cores,
                mean_us: mean,
                p05_us: quantile(&runtimes, 0.05).unwrap(),
                p95_us: quantile(&runtimes, 0.95).unwrap(),
                max_us: runtimes.iter().cloned().fold(0.0, f64::max),
                stalls_per_cycle: cost.memory_stalls_per_cycle(n_cbs, cores),
            };
            println!(
                "{:>6} {:>6} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>14.3}",
                cell.n_cbs,
                cell.cores,
                cell.mean_us,
                cell.p05_us,
                cell.p95_us,
                cell.max_us,
                cell.stalls_per_cycle
            );
            grid.push(cell);
        }
        println!();
    }

    // Shape checks the paper's figure makes visually.
    let mean_of = |cbs: u32, cores: u32| {
        grid.iter()
            .find(|c| c.n_cbs == cbs && c.cores == cores)
            .unwrap()
            .mean_us
    };
    let per_cb_3 = mean_of(3, 1) / 3.0;
    let per_cb_15 = mean_of(15, 1) / 15.0;
    println!("linearity: per-CB cost at 3 CBs {per_cb_3:.2}us vs at 15 CBs {per_cb_15:.2}us");
    let inflation4 = mean_of(15, 4) / mean_of(15, 1) - 1.0;
    let inflation6 = mean_of(15, 6) / mean_of(15, 1) - 1.0;
    println!(
        "multi-core inflation at 15 CBs: 4 cores +{:.1}%, 6 cores +{:.1}% (paper: up to ~25%)",
        inflation4 * 100.0,
        inflation6 * 100.0
    );

    write_json("fig06_ldpc_runtime", &grid);
}
