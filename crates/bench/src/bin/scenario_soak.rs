//! Scenario soak — the measurement-driven workload library at volume.
//!
//! Runs every library scenario (urban macro bursts, stadium flash crowd,
//! sliced deadlines, mMTC background, trace replay) on a shared pool at
//! ×10–×100 the tier-1 test volume and reports, per scenario: SLA miss
//! rate, reliability, demand completed, and simulation throughput
//! (cell-slots/sec). The trace-replay arm runs on the EPYC platform knob
//! so the Pramanik compute scale is soaked too.
//!
//! Two outputs:
//!
//! - `scenario_soak.json` (under `bench-results/` or
//!   `CONCORDIA_RESULTS_DIR`): the *deterministic* per-scenario results —
//!   report fingerprints, reliability, violations. Bytes are independent
//!   of `--jobs` (the runner merges in input order) and `--engine` (the
//!   engines are byte-identical by contract), so CI diffs the file
//!   across both settings.
//! - `BENCH_scenarios.json` in the working directory: the same rows plus
//!   wall-clock throughput. Machine-dependent, committed at the repo
//!   root as the reference measurement.
//!
//! `--check` re-runs every scenario on the legacy binary-heap engine and
//! exits non-zero unless the fingerprints match the wheel run byte for
//! byte (the engine-invariance gate), or if any cell stranded work.
//!
//! Example:
//! `cargo run -p concordia-bench --release --bin scenario_soak -- --quick --check`

use concordia_bench::{banner, bool_flag, jobs_from_args, write_json, RunLength};
use concordia_core::runner::run_parallel;
use concordia_core::{ScenarioSpec, SimConfig};
use concordia_platform::events::EngineChoice;
use concordia_ran::Nanos;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    scenario: String,
    platform: &'static str,
    cells: u32,
    cores: u32,
    dags: u64,
    violations: u64,
    reliability: f64,
    sla_miss_rate: f64,
    fingerprint: String,
}

#[derive(Serialize)]
struct TimingRow {
    scenario: String,
    cell_slots: u64,
    run_secs: f64,
    slots_per_sec: f64,
}

/// The soak specs: each library scenario with its envelope stretched to
/// the simulated duration (ramps and periods in slots at 1 ms/slot).
fn specs(len: RunLength) -> Vec<ScenarioSpec> {
    // Slots simulated per run (paper_20mhz: 1 ms slots).
    let slots = match len {
        RunLength::Quick => 1_000,
        RunLength::Standard => 4_000,
        RunLength::Long => 10_000,
    };
    let parse = |s: String| ScenarioSpec::parse(&s).expect("soak scenario parses");
    vec![
        parse(format!("urban_macro_burst:period={}", slots / 2)),
        parse(format!(
            "stadium_flash_crowd:onset=0.2,ramp={},hold={},decay={}",
            slots / 10,
            slots / 4,
            slots / 5
        )),
        parse("sliced_deadlines:urllc_deadline=0.5".to_string()),
        parse(format!(
            "mmtc_background:devices=2000000,period={}",
            slots * 20
        )),
        parse(format!(
            "trace_replay:ttis={},trace_seed=3,scale=1.2,platform=epyc_rome7452",
            (slots / 2).max(64)
        )),
    ]
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    let jobs = jobs_from_args();
    let check = bool_flag("--check");
    banner(
        "Scenario soak (measurement-driven workload library at volume)",
        "every library scenario holds its SLA on the sized pool, and its \
         bytes are engine- and jobs-invariant",
    );

    let (secs, profiling, cells, cores) = match len {
        RunLength::Quick => (1, 300, 4, 6),
        RunLength::Standard => (4, 1_000, 7, 8),
        RunLength::Long => (10, 2_000, 7, 8),
    };

    let mut base = SimConfig::paper_20mhz();
    base.duration = Nanos::from_secs(secs);
    base.profiling_slots = profiling;
    base.n_cells = cells;
    base.cores = cores;
    base.load = 0.6;
    base.seed = seed;

    let library = specs(len);
    let configs: Vec<SimConfig> = library
        .iter()
        .map(|s| SimConfig {
            scenario: Some(s.clone()),
            ..base.clone()
        })
        .collect();

    println!(
        "\n{secs}s simulated x {} scenarios, C={cells} cells on {cores} cores, seed {seed}, {jobs} jobs",
        library.len()
    );

    // Deterministic sweep (parallel; merge order is input order).
    let reports = run_parallel(configs.clone(), jobs);

    let mut rows: Vec<Row> = Vec::new();
    println!(
        "\n{:>20} {:>16} {:>9} {:>11} {:>12}",
        "scenario", "platform", "dags", "violations", "reliability"
    );
    for (spec, r) in library.iter().zip(&reports) {
        let m = &r.metrics;
        println!(
            "{:>20} {:>16} {:>9} {:>11} {:>12.6}",
            spec.name(),
            spec.platform.name(),
            m.dags,
            m.violations,
            m.reliability
        );
        rows.push(Row {
            scenario: spec.name().to_string(),
            platform: spec.platform.name(),
            cells,
            cores,
            dags: m.dags as u64,
            violations: m.violations,
            reliability: m.reliability,
            sla_miss_rate: if m.dags > 0 {
                m.violations as f64 / m.dags as f64
            } else {
                0.0
            },
            fingerprint: r.fingerprint(),
        });
    }

    // Timing: one timed serial run per scenario (wall-clock only — never
    // part of the deterministic output).
    let slot_ns = base.cell.slot_duration().as_nanos();
    let cell_slots = base.duration.as_nanos() / slot_ns * cells as u64;
    let mut timing: Vec<TimingRow> = Vec::new();
    for (spec, cfg) in library.iter().zip(&configs) {
        let t0 = Instant::now();
        let report = concordia_core::run_experiment(cfg.clone());
        let run_secs = t0.elapsed().as_secs_f64();
        assert!(report.metrics.dags > 0, "timed run must complete DAGs");
        timing.push(TimingRow {
            scenario: spec.name().to_string(),
            cell_slots,
            run_secs,
            slots_per_sec: cell_slots as f64 / run_secs,
        });
    }
    println!(
        "\n{:>20} {:>12} {:>12}",
        "scenario", "cell-slots", "slots/sec"
    );
    for t in &timing {
        println!(
            "{:>20} {:>12} {:>12.0}",
            t.scenario, t.cell_slots, t.slots_per_sec
        );
    }

    write_json(
        "scenario_soak",
        &serde_json::json!({
            "bench": "scenario_soak",
            "seed": seed,
            "simulated_secs": secs,
            "cells": cells,
            "cores": cores,
            "rows": rows,
        }),
    );

    std::fs::write(
        "BENCH_scenarios.json",
        serde_json::to_string_pretty(&serde_json::json!({
            "bench": "scenario_soak",
            "mode": format!("{len:?}").to_lowercase(),
            "seed": seed,
            "simulated_secs": secs,
            "cells": cells,
            "cores": cores,
            "rows": rows,
            "timing": timing,
        }))
        .expect("serialize timing")
            + "\n",
    )
    .expect("write BENCH_scenarios.json");
    println!("[rows + timing written to BENCH_scenarios.json]");

    if check {
        let mut ok = true;
        // Engine invariance: the legacy binary-heap engine must reproduce
        // every wheel fingerprint byte for byte.
        let legacy_reports = run_parallel(
            configs
                .iter()
                .map(|c| SimConfig {
                    engine: EngineChoice::Legacy,
                    ..c.clone()
                })
                .collect(),
            jobs,
        );
        for ((spec, wheel), legacy) in library.iter().zip(&reports).zip(&legacy_reports) {
            if wheel.to_canonical_json() != legacy.to_canonical_json() {
                eprintln!(
                    "CHECK FAILED: {} diverges between engines ({} vs {})",
                    spec.name(),
                    wheel.fingerprint(),
                    legacy.fingerprint()
                );
                ok = false;
            }
        }
        // Conservation: no scenario strands a cell's work.
        for (spec, r) in library.iter().zip(&reports) {
            for (c, ledger) in r.metrics.per_cell.iter().enumerate() {
                if ledger.injected == 0 || ledger.completed != ledger.injected {
                    eprintln!(
                        "CHECK FAILED: {} cell {c} completed {} of {} DAGs",
                        spec.name(),
                        ledger.completed,
                        ledger.injected
                    );
                    ok = false;
                }
            }
        }
        if ok {
            println!("\ncheck passed: engine-invariant bytes, no stranded work");
        } else {
            std::process::exit(1);
        }
    }
}
