//! Drift soak — the self-healing predictor control plane under a
//! long-lived `drift_injection` window, supervised vs frozen.
//!
//! One sustained fault window perturbs the feature→runtime mapping (long
//! tasks inflate by up to `1 + severity`, short ones barely move) at a
//! tightened Fig. 11 stress point: 100 MHz x 2 cells on a six-core pool
//! with Redis collocated at high load, where the drift's runtime
//! inflation visibly moves reliability. Two runs share the seed and
//! traffic:
//!
//! * **supervised** — the predictor supervisor detects the drift,
//!   quarantines the affected lanes onto the inflated-linear fallback,
//!   retrains from the replay buffer and readmits through the shadow
//!   gate. Post-readmission reliability must return to the pre-fault
//!   level.
//! * **frozen** — the same models with no supervisor and no online
//!   updates: the paper's "train once, never adapt" strawman. It has no
//!   mechanism to absorb the new regime, so its reliability stays
//!   degraded for as long as the drift lasts.
//!
//! The drift holds for most of the run, injected as two back-to-back
//! windows of equal severity so the report carves it into an *early*
//! phase (detection, quarantine, retraining happen here) and a *late*
//! phase (the retrained models serve), with a healthy tail after. The
//! claims: the supervised run walks the whole lifecycle and its
//! post-fault reliability returns to the pre-fault level, while the
//! frozen model runs degraded for as long as the drift is active.
//!
//! The run length is phrased in supervisor windows so the lifecycle is
//! visible: `--windows N` simulates `N x window_slots` slots. Everything
//! is bit-reproducible: the same `--seed` yields byte-identical JSON.
//!
//! Example:
//! `cargo run -p concordia-bench --release --bin drift_soak -- --seed 7 --windows 200`
//!
//! `--trace` turns the ring-buffer recorder on for both runs. The rows are
//! metric-derived only, so the JSON stays byte-identical with tracing on
//! or off — CI runs the soak both ways and compares.

use concordia_bench::{banner, bool_flag, f64_flag, u64_flag, write_json};
use concordia_core::{run_experiment, Colocation, ExperimentReport, SimConfig};
use concordia_platform::faults::{FaultKind, FaultPlan, FaultSpec};
use concordia_platform::trace::TraceConfig;
use concordia_platform::workloads::WorkloadKind;
use concordia_sched::SupervisorConfig;
use serde::Serialize;

const SEVERITY: f64 = 2.5;

#[derive(Serialize)]
struct DriftRow {
    mode: String,
    /// Reliability before the drift opens.
    reliability_pre: f64,
    /// Reliability while the control plane is detecting/retraining.
    reliability_early_drift: f64,
    /// Reliability once the retrained models serve (drift still active).
    reliability_late_drift: f64,
    /// Reliability after the drift clears.
    reliability_post: f64,
    /// Post-fault reliability back at (or above) the pre-fault level.
    recovered: bool,
    /// Reliability visibly below the pre-fault level while drifting.
    degraded_during_drift: bool,
    drift_detections: u64,
    quarantines: u64,
    retrains: u64,
    shadow_rejections: u64,
    readmissions: u64,
    swaps: u64,
    shed_windows: u64,
    rejected_dags: u64,
    windows_to_readmission: Option<u64>,
    lanes_on_fallback: u64,
}

fn row(mode: &str, report: &ExperimentReport) -> DriftRow {
    let f = report.fault.as_ref().expect("drift_soak injects faults");
    let (early, late) = match f.windows.as_slice() {
        [e, l] => (e, l),
        _ => panic!("drift_soak always injects exactly two windows"),
    };
    let sup = report.supervisor.clone().unwrap_or_default();
    let pre = early.reliability_before;
    // The drift as a whole: completions while either window was active.
    let drift_dags = early.dags_during + late.dags_during;
    let drift_viols = early.violations_during + late.violations_during;
    let during = if drift_dags == 0 {
        1.0
    } else {
        1.0 - drift_viols as f64 / drift_dags as f64
    };
    DriftRow {
        mode: mode.to_string(),
        reliability_pre: pre,
        reliability_early_drift: early.reliability_during,
        reliability_late_drift: late.reliability_during,
        reliability_post: late.reliability_after,
        recovered: late.reliability_after >= pre - 1e-12,
        degraded_during_drift: during < pre - 1e-12,
        drift_detections: sup.drift_detections,
        quarantines: sup.quarantines,
        retrains: sup.retrains,
        shadow_rejections: sup.shadow_rejections,
        readmissions: sup.readmissions,
        swaps: sup.swaps,
        shed_windows: sup.shed_windows,
        rejected_dags: sup.rejected_dags,
        windows_to_readmission: sup.windows_to_readmission,
        lanes_on_fallback: sup.lanes_on_fallback,
    }
}

fn main() {
    let seed = concordia_bench::seed_from_args();
    let load = f64_flag("--load", 0.85).clamp(0.0, 1.0);
    let windows = u64_flag("--windows", 200).max(10);
    banner(
        "Drift soak (predictor control plane under a sustained feature-runtime drift)",
        "the supervisor detects, quarantines, retrains and readmits while a frozen model stays degraded",
    );

    let sup_cfg = SupervisorConfig::default();
    let mut base = SimConfig::paper_100mhz();
    let slot = base.cell.slot_duration();
    let dur = slot.scale((windows * sup_cfg.window_slots) as f64);
    // The drift opens after calibration plus a healthy baseline stretch
    // and holds for 60% of the run. The early phase (30-60%) is where
    // detection, quarantine and retraining happen; the late phase
    // (60-90%) is where the readmitted models serve; the last 10% is the
    // healthy tail the recovery claim is judged on.
    let start = dur.scale(0.30);
    let split = dur.scale(0.60);
    let end = dur.scale(0.90);

    base.cores = 6;
    base.duration = dur;
    base.profiling_slots = 600;
    base.load = load;
    base.colocation = Colocation::Single(WorkloadKind::Redis);
    base.seed = seed;
    base.trace = bool_flag("--trace").then(TraceConfig::default);
    base.faults = FaultPlan {
        specs: vec![
            FaultSpec::fixed(FaultKind::DriftInjection, start, split - start, SEVERITY),
            FaultSpec::fixed(FaultKind::DriftInjection, split, end - split, SEVERITY),
        ],
    };

    let mut supervised = base.clone();
    supervised.supervisor = Some(sup_cfg);

    let mut frozen = base.clone();
    frozen.supervisor = None;
    frozen.online_updates = false;

    println!(
        "\n{} supervisor windows ({} slots each, {:.1}s simulated), load {:.0}%, \
         drift sev {:.2} over {:.0}-{:.0}us (early/late split at {:.0}us), seed {}",
        windows,
        sup_cfg.window_slots,
        dur.as_nanos() as f64 / 1e9,
        load * 100.0,
        SEVERITY,
        start.as_micros_f64(),
        end.as_micros_f64(),
        split.as_micros_f64(),
        seed
    );

    let sup_report = run_experiment(supervised);
    let frozen_report = run_experiment(frozen);
    let rows = vec![
        row("supervised", &sup_report),
        row("frozen", &frozen_report),
    ];

    println!(
        "\n{:<12} {:>9} {:>10} {:>10} {:>9} {:>10} {:>8} {:>8} {:>8}",
        "mode",
        "rel.pre",
        "rel.early",
        "rel.late",
        "rel.post",
        "recovered",
        "quaran",
        "retrain",
        "readmit"
    );
    for r in &rows {
        println!(
            "{:<12} {:>9.5} {:>10.5} {:>10.5} {:>9.5} {:>10} {:>8} {:>8} {:>8}",
            r.mode,
            r.reliability_pre,
            r.reliability_early_drift,
            r.reliability_late_drift,
            r.reliability_post,
            if r.recovered { "yes" } else { "NO" },
            r.quarantines,
            r.retrains,
            r.readmissions
        );
    }
    if let Some(w) = rows[0].windows_to_readmission {
        println!("\nsupervised: last lane readmitted {w} windows after the first quarantine");
    }

    let supervised_healed = rows[0].recovered && rows[0].readmissions > 0;
    let frozen_degraded = rows[1].degraded_during_drift;
    println!(
        "\nsupervised healed (readmitted; post-fault reliability at pre-fault level): {} | \
         frozen degraded while the drift lasted: {}",
        if supervised_healed { "yes" } else { "NO" },
        if frozen_degraded { "yes" } else { "NO" }
    );

    write_json(
        "drift_soak",
        &serde_json::json!({
            "seed": seed,
            "load": load,
            "windows": windows,
            "severity": SEVERITY,
            "rows": rows,
            "supervised_healed": supervised_healed,
            "frozen_degraded": frozen_degraded,
        }),
    );
}
