//! Scheduler matrix — minimum pool cores × pool architecture × pooled
//! cells, plus per-architecture simulation throughput.
//!
//! PR 9 made the worker pool a pluggable [`PoolArchitecture`]: the
//! paper's centralized EDF queue against centralized FCFS, per-cell
//! dFCFS with static cell→core affinity, seeded work stealing, and a
//! FH/PHY/MAC pipeline partition. This bench reuses the Table-2 sizing
//! harness to answer the design question the refactor opens: *how many
//! cores does each discipline need to carry peak traffic reliably?* The
//! paper's argument for a centralized deadline queue predicts EDF sizes
//! smallest — partitioned disciplines strand slack behind their affinity
//! walls, so their minimum grows with C.
//!
//! Two outputs:
//!
//! - `sched_matrix.json` (under `bench-results/` or
//!   `CONCORDIA_RESULTS_DIR`): the *deterministic* min-cores matrix.
//!   Bytes are independent of `--jobs` (the runner merges in input
//!   order) and of `--engine` (the engines are byte-identical by
//!   contract), so CI diffs the file across both settings.
//! - `BENCH_sched.json` in the working directory: the matrix again plus
//!   the *timing* figures — wall-clock and simulated cell-slots/sec per
//!   architecture. Machine-dependent, committed at the repo root as the
//!   reference measurement.
//!
//! `--check` exits non-zero unless centralized EDF needs no more cores
//! than per-cell dFCFS at every C >= 4 (the pooling argument, stated as
//! a gate). `--pool NAME` restricts the sweep to one architecture
//! (the check is skipped unless both edf and dfcfs are swept);
//! `--engine legacy|wheel` selects the event engine.
//!
//! Example:
//! `cargo run -p concordia-bench --release --bin sched_matrix -- --quick --check`

use concordia_bench::{banner, bool_flag, f64_flag, jobs_from_args, write_json, RunLength};
use concordia_core::runner::run_parallel;
use concordia_core::{SimConfig, Simulation};
use concordia_platform::arch::PoolArchChoice;
use concordia_platform::events::EngineChoice;
use concordia_ran::Nanos;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    arch: &'static str,
    cells: u32,
    min_cores: u32,
    reliability: f64,
    /// `true` when the smallest passing pool was found within the search
    /// bound; `false` means even the largest candidate missed the target
    /// and `min_cores` is that largest candidate.
    met_target: bool,
}

#[derive(Serialize)]
struct TimingRow {
    arch: &'static str,
    cells: u32,
    cores: u32,
    sim_secs: f64,
    cell_slots: u64,
    run_secs: f64,
    slots_per_sec: f64,
}

/// Minimum cores meeting `target` reliability, by running every candidate
/// pool size in parallel and taking the smallest that passes (same answer
/// as a linear scan, a fraction of the wall-clock). Falls back to the
/// largest candidate when none passes.
fn min_cores(template: &SimConfig, max_cores: u32, target: f64, jobs: usize) -> (u32, f64, bool) {
    let configs: Vec<SimConfig> = (1..=max_cores)
        .map(|cores| SimConfig {
            cores,
            ..template.clone()
        })
        .collect();
    let reports = run_parallel(configs, jobs);
    for r in &reports {
        if r.metrics.reliability >= target {
            return (r.cores, r.metrics.reliability, true);
        }
    }
    let last = reports.last().expect("at least one candidate");
    (last.cores, last.metrics.reliability, false)
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    let jobs = jobs_from_args();
    let check = bool_flag("--check");
    let load = f64_flag("--load", 1.0).clamp(0.0, 1.0);
    let engine = match std::env::args()
        .skip_while(|a| a != "--engine")
        .nth(1)
        .as_deref()
    {
        Some("legacy") => EngineChoice::Legacy,
        _ => EngineChoice::Wheel,
    };
    let arches: Vec<PoolArchChoice> = match std::env::args()
        .skip_while(|a| a != "--pool")
        .nth(1)
        .as_deref()
    {
        Some(name) => match PoolArchChoice::from_name(name) {
            Some(a) => vec![a],
            None => {
                eprintln!("unknown pool architecture '{name}'");
                std::process::exit(2);
            }
        },
        None => PoolArchChoice::ALL.to_vec(),
    };
    banner(
        "Scheduler matrix (minimum pool cores x architecture x pooled cells)",
        "a centralized deadline queue sizes the pool no larger than partitioned \
         disciplines, and the gap grows with C",
    );

    let (secs, profiling, target) = match len {
        RunLength::Quick => (1, 300, 0.999),
        RunLength::Standard => (4, 1_000, 0.9999),
        RunLength::Long => (15, 2_000, 0.9999),
    };
    let cell_counts: &[u32] = match len {
        RunLength::Quick => &[1, 2, 4],
        _ => &[1, 2, 4, 7],
    };

    let mut base = SimConfig::paper_20mhz();
    base.duration = Nanos::from_secs(secs);
    base.profiling_slots = profiling;
    base.load = load;
    base.seed = seed;
    base.engine = engine;
    // Like Table 2: size for peak traffic, not the bursty average.
    base.peak_provisioning = true;

    println!(
        "\n{}s simulated per candidate, reliability target {}, seed {}, {} jobs, engine {}",
        secs,
        target,
        seed,
        jobs,
        engine.name()
    );
    println!(
        "\n{:>9} {:>6} {:>10} {:>12} {:>7}",
        "arch", "cells", "min cores", "reliability", "met"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut timing: Vec<TimingRow> = Vec::new();
    for &arch in &arches {
        // This architecture's single-cell slice bounds the multi-cell
        // search: C isolated slices could always mimic a partition, so no
        // discipline should need much more than C x its own slice (+2
        // headroom for partition-boundary rounding).
        let mut single = base.clone();
        single.pool = arch;
        single.n_cells = 1;
        let (per_cell, _, _) = min_cores(&single, 6, target, jobs);
        for &cells in cell_counts {
            let mut shared = base.clone();
            shared.pool = arch;
            shared.n_cells = cells;
            let bound = per_cell * cells + 2;
            let (cores, rel, met) = min_cores(&shared, bound, target, jobs);
            println!(
                "{:>9} {:>6} {:>10} {:>12.5} {:>7}",
                arch.name(),
                cells,
                cores,
                rel,
                met
            );
            rows.push(Row {
                arch: arch.name(),
                cells,
                min_cores: cores,
                reliability: rel,
                met_target: met,
            });
        }

        // Throughput: one timed run at the largest C on that C's minimum
        // pool. Wall-clock only — never part of the deterministic output.
        let row = rows.last().expect("at least one row per arch");
        let (cells, cores) = (row.cells, row.min_cores);
        let mut timed = base.clone();
        timed.pool = arch;
        timed.n_cells = cells;
        timed.cores = cores;
        let slot_ns = timed.cell.slot_duration().as_nanos();
        let cell_slots = timed.duration.as_nanos() / slot_ns * cells as u64;
        let sim = Simulation::new(timed);
        let t0 = Instant::now();
        let report = sim.run();
        let run_secs = t0.elapsed().as_secs_f64();
        assert!(report.metrics.dags > 0, "timed run must complete DAGs");
        timing.push(TimingRow {
            arch: arch.name(),
            cells,
            cores,
            sim_secs: secs as f64,
            cell_slots,
            run_secs,
            slots_per_sec: cell_slots as f64 / run_secs,
        });
    }

    println!(
        "\n{:>9} {:>6} {:>6} {:>12}",
        "arch", "cells", "cores", "slots/sec"
    );
    for t in &timing {
        println!(
            "{:>9} {:>6} {:>6} {:>12.0}",
            t.arch, t.cells, t.cores, t.slots_per_sec
        );
    }

    write_json(
        "sched_matrix",
        &serde_json::json!({
            "bench": "sched_matrix",
            "seed": seed,
            "simulated_secs": secs,
            "load": load,
            "reliability_target": target,
            "rows": rows,
        }),
    );

    std::fs::write(
        "BENCH_sched.json",
        serde_json::to_string_pretty(&serde_json::json!({
            "bench": "sched_matrix",
            "mode": format!("{len:?}").to_lowercase(),
            "seed": seed,
            "reliability_target": target,
            "rows": rows,
            "timing": timing,
        }))
        .expect("serialize timing")
            + "\n",
    )
    .expect("write BENCH_sched.json");
    println!("[matrix + timing written to BENCH_sched.json]");

    if check {
        let min_for = |arch: &str, cells: u32| {
            rows.iter()
                .find(|r| r.arch == arch && r.cells == cells)
                .map(|r| r.min_cores)
        };
        let mut compared = false;
        let mut ok = true;
        for &cells in cell_counts.iter().filter(|&&c| c >= 4) {
            if let (Some(edf), Some(dfcfs)) = (min_for("edf", cells), min_for("dfcfs", cells)) {
                compared = true;
                if edf > dfcfs {
                    eprintln!(
                        "CHECK FAILED: C={cells} edf needs {edf} cores vs dfcfs {dfcfs} \
                         (centralized EDF must never size larger)"
                    );
                    ok = false;
                }
            }
        }
        if !compared {
            println!("\ncheck skipped: needs both edf and dfcfs at some C >= 4 (drop --pool)");
        } else if ok {
            println!("\ncheck passed: edf <= dfcfs min cores at every C >= 4");
        } else {
            std::process::exit(1);
        }
    }
}
