//! Fig. 12 — Concordia tail latency vs vRAN pool size under the mixed
//! workload (§6.2 "Number of vRAN pool cores").
//!
//! Paper claims reproduced here:
//! * the 20 MHz × 7-cell configuration achieves 99.999 % reliability with
//!   8 cores;
//! * the 100 MHz × 2-cell configuration only reaches 99.99 % with 8 cores,
//!   and adding one more core (9) restores 99.999 % — extra cores give
//!   Concordia room to compensate when a scheduled core wakes late.

use concordia_bench::{banner, quantile_or_nan, write_json, RunLength};
use concordia_core::{run_experiment, Colocation, SimConfig};
use concordia_ran::Nanos;
use serde::Serialize;

#[derive(Serialize)]
struct Fig12Row {
    config: String,
    cores: u32,
    p9999_us: f64,
    p99999_us: f64,
    deadline_us: f64,
    reliability: f64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 12 (Concordia tail latency vs pool size, Mix workload)",
        "20MHz: 5-nines at 8 cores; 100MHz: 4-nines at 8 cores, 5-nines at 9",
    );

    let mut rows = Vec::new();
    println!(
        "\n{:<10} {:>6} {:>12} {:>13} {:>10} {:>12}",
        "config", "cores", "p99.99(us)", "p99.999(us)", "deadline", "reliability"
    );
    for (name, template) in [
        ("20MHz x7", SimConfig::paper_20mhz()),
        ("100MHz x2", SimConfig::paper_100mhz()),
    ] {
        for cores in [8u32, 9] {
            let mut cfg = template.clone();
            cfg.cores = cores;
            cfg.colocation = Colocation::Mix;
            // The Mix components toggle every 10-70 s; run long enough to
            // see several phases at the Long preset.
            cfg.duration = Nanos::from_secs(len.online_secs() * 2);
            cfg.profiling_slots = len.profiling_slots();
            cfg.seed = seed;
            let r = run_experiment(cfg);
            println!(
                "{name:<10} {cores:>6} {:>12.0} {:>13.0} {:>10.0} {:>12.6}",
                quantile_or_nan(r.metrics.p9999_latency_us),
                quantile_or_nan(r.metrics.p99999_latency_us),
                r.deadline_us,
                r.metrics.reliability
            );
            rows.push(Fig12Row {
                config: name.into(),
                cores,
                p9999_us: quantile_or_nan(r.metrics.p9999_latency_us),
                p99999_us: quantile_or_nan(r.metrics.p99999_latency_us),
                deadline_us: r.deadline_us,
                reliability: r.metrics.reliability,
            });
        }
    }

    println!("\n(the paper's point: more pool cores give the 20us re-scheduler more\n room to add a core when an already-scheduled one wakes late)");
    write_json("fig12_pool_size", &rows);
}
