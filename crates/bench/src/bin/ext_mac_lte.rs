//! §7 extensions — Concordia beyond the 5G PHY:
//!
//! 1. **MAC in the pool**: the MAC-layer radio-resource schedulers run as
//!    deadline tasks of the vRAN pool ("the schedulers of the MAC layer …
//!    can be viewed as deadline tasks that can be processed by a vRAN
//!    pool"). The experiment verifies Concordia still meets 99.999 % with
//!    the extra per-slot MAC DAGs while sharing the pool.
//! 2. **4G cells**: FlexRAN is a 4G+5G reference stack; the reproduction
//!    supports LTE cells (Turbo coding, 1 ms TTIs). The experiment runs a
//!    mixed-generation deployment check: the LTE pool behaves like the 5G
//!    one, just cheaper per slot.

use concordia_bench::{banner, pct, quantile_or_nan, write_json, RunLength};
use concordia_core::{run_experiment, Colocation, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::{CellConfig, Nanos};
use serde::Serialize;

#[derive(Serialize)]
struct ExtRow {
    scenario: String,
    reliability: f64,
    p99999_us: f64,
    reclaimed_pct: f64,
    tasks_executed: u64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "§7 extensions (MAC-in-pool deadline tasks; 4G/LTE Turbo cells)",
        "Concordia's techniques generalize beyond the 5G PHY workload",
    );

    let mut rows = Vec::new();
    println!(
        "\n{:<28} {:>12} {:>13} {:>12} {:>12}",
        "scenario", "reliability", "p99.999(us)", "reclaimed", "tasks"
    );
    let mut run = |scenario: &str, cfg: SimConfig| {
        let r = run_experiment(cfg);
        println!(
            "{scenario:<28} {:>12.6} {:>13.0} {:>12} {:>12}",
            r.metrics.reliability,
            quantile_or_nan(r.metrics.p99999_latency_us),
            pct(r.metrics.reclaimed_fraction),
            r.metrics.tasks_executed
        );
        rows.push(ExtRow {
            scenario: scenario.into(),
            reliability: r.metrics.reliability,
            p99999_us: quantile_or_nan(r.metrics.p99999_latency_us),
            reclaimed_pct: r.metrics.reclaimed_fraction * 100.0,
            tasks_executed: r.metrics.tasks_executed,
        });
    };

    // --- MAC-in-pool, 20 MHz config with Redis ---
    let mut base = SimConfig::paper_20mhz();
    base.duration = Nanos::from_secs(len.online_secs());
    base.profiling_slots = len.profiling_slots();
    base.load = 0.5;
    base.colocation = Colocation::Single(WorkloadKind::Redis);
    base.seed = seed;

    run("PHY only (baseline)", base.clone());
    let mut with_mac = base.clone();
    with_mac.mac_in_pool = true;
    run("PHY + MAC in pool", with_mac);

    // --- LTE cells (Turbo coding) under the same regime ---
    let mut lte = base.clone();
    lte.cell = CellConfig::lte_20mhz();
    run("LTE x7 (Turbo), PHY only", lte.clone());
    lte.mac_in_pool = true;
    run("LTE x7, PHY + MAC", lte);

    println!(
        "\nThe MAC DAGs add per-slot work with 1-slot deadlines; Concordia's\n\
         federated demand accounting absorbs them without losing 5-nines —\n\
         the §7 generalization argument."
    );
    write_json("ext_mac_lte", &rows);
}
