//! Fig. 10 — OS scheduling (wake) latency of the vRAN pool worker threads
//! with and without workload interference (§6.2).
//!
//! Paper claims reproduced here:
//! * vanilla FlexRAN generates far more scheduling events than Concordia
//!   (~230 % more in the paper) because it yields/reacquires around every
//!   queue-empty episode;
//! * under a collocated workload (Redis) a visible population of wake
//!   events lands in the 64–255 µs buckets;
//! * Concordia has fewer events overall but a relatively larger share of
//!   high-latency wakes under colocation (retained cores queue unmovable
//!   kernel work), which its 20 µs re-scheduling compensates for.

use concordia_bench::{banner, write_json, RunLength};
use concordia_core::{run_experiment, Colocation, SchedulerChoice, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::Nanos;
use concordia_stats::hist::Log2Histogram;
use serde::Serialize;

#[derive(Serialize)]
struct Fig10Cell {
    scheduler: String,
    colocation: String,
    total_events: u64,
    buckets: Vec<(String, u64)>,
    tail_64us_plus: u64,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 10 (wake latency histograms, 2x100MHz cells, 8 cores)",
        "FlexRAN has ~230% more scheduling events; colocation adds a 64-255us tail",
    );

    let mut cells = Vec::new();
    for colo in [
        Colocation::Isolated,
        Colocation::Single(WorkloadKind::Redis),
    ] {
        for sched in [SchedulerChoice::FlexRan, SchedulerChoice::concordia()] {
            let mut cfg = SimConfig::paper_100mhz();
            cfg.cores = 8;
            cfg.duration = Nanos::from_secs(len.online_secs());
            cfg.profiling_slots = len.profiling_slots();
            cfg.scheduler = sched;
            cfg.colocation = colo;
            cfg.seed = seed;
            let r = run_experiment(cfg);
            let buckets: Vec<(String, u64)> = r
                .metrics
                .wake_hist_counts
                .iter()
                .enumerate()
                .map(|(i, &c)| (Log2Histogram::bucket_label(i), c))
                .collect();
            let tail: u64 = buckets
                .iter()
                .enumerate()
                .filter(|(i, _)| Log2Histogram::bucket_range(*i).0 >= 64)
                .map(|(_, (_, c))| *c)
                .sum();

            println!(
                "\n{} / {} — {} scheduling events ({} at >=64us):",
                r.scheduler, r.colocation, r.metrics.wake_events, tail
            );
            for (label, count) in &buckets {
                let bar = "#".repeat(((*count as f64 + 1.0).log10() * 8.0) as usize);
                println!("  {label:>9}us {count:>8} {bar}");
            }
            cells.push(Fig10Cell {
                scheduler: r.scheduler.clone(),
                colocation: r.colocation.clone(),
                total_events: r.metrics.wake_events,
                buckets,
                tail_64us_plus: tail,
            });
        }
    }

    let flex_iso = &cells[0];
    let conc_iso = &cells[1];
    println!(
        "\nevent ratio (isolated): FlexRAN/Concordia = {:.1}x (paper: ~3.3x / '230% higher')",
        flex_iso.total_events as f64 / conc_iso.total_events.max(1) as f64
    );

    write_json("fig10_sched_latency", &cells);
}
