//! Fig. 3 — LTE cell traffic characteristics (§2.2), plus the Gaussian
//! pooling analysis.
//!
//! Paper claims reproduced here:
//! * a single cell is completely idle in 75 % of 1 ms TTIs;
//! * the 3-cell aggregate is idle only ~20 % of TTIs;
//! * the aggregate median transfer is ~0.2 KB/TTI, with the 95th
//!   percentile ~10× the median and the 99th ~2.5 KB;
//! * traffic fluctuates at millisecond scale (Fig. 3b);
//! * pooling waste grows ∝ √n (the §2.2 Gaussian argument).

use concordia_bench::{banner, pct, write_json, RunLength};
use concordia_traffic::burst::BurstModel;
use concordia_traffic::gauss;
use concordia_traffic::trace::{Trace, TraceStats};
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Results {
    single_cell: TraceStats,
    aggregate_3cells: TraceStats,
    cdf_points_single: Vec<(f64, f64)>,
    cdf_points_aggregate: Vec<(f64, f64)>,
    pooling_waste_by_n: Vec<(u32, f64)>,
}

fn cdf_points(trace: &Trace) -> Vec<(f64, f64)> {
    let ecdf = concordia_stats::summary::Ecdf::new(trace.sizes());
    (0..=40)
        .map(|i| {
            let kb = i as f64 * 0.1; // 0..4 KB, Fig. 3a's x-axis
            (kb, ecdf.eval(kb * 1000.0))
        })
        .collect()
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 3 (LTE cell traffic characteristics)",
        "single cell idle 75% of TTIs; 3-cell aggregate idle ~20%, median 0.2KB, p95 ~10x median",
    );

    let ttis = match len {
        RunLength::Quick => 60_000,
        RunLength::Standard => 600_000,
        RunLength::Long => 3_600_000, // the 1-hour trace of §2.2
    };

    let mut trio = BurstModel::lte_trio(seed);
    let traces: Vec<Trace> = {
        let mut per_cell: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(ttis)).collect();
        for _ in 0..ttis {
            for (i, m) in trio.iter_mut().enumerate() {
                per_cell[i].push(m.next_tti());
            }
        }
        per_cell.into_iter().map(Trace::new).collect()
    };
    let refs: Vec<&Trace> = traces.iter().collect();
    let aggregate = Trace::aggregate(&refs);

    let single = traces[0].stats();
    let agg = aggregate.stats();

    println!("\nFig. 3a — per-TTI transfer size distribution ({ttis} TTIs):");
    println!("{:<22} {:>12} {:>12}", "", "1 cell", "3 cells");
    println!(
        "{:<22} {:>12} {:>12}",
        "idle TTI fraction",
        pct(single.idle_fraction),
        pct(agg.idle_fraction)
    );
    println!(
        "{:<22} {:>11.2}KB {:>11.2}KB",
        "median / TTI",
        single.median / 1000.0,
        agg.median / 1000.0
    );
    println!(
        "{:<22} {:>11.2}KB {:>11.2}KB",
        "p95 / TTI",
        single.p95 / 1000.0,
        agg.p95 / 1000.0
    );
    println!(
        "{:<22} {:>11.2}KB {:>11.2}KB",
        "p99 / TTI",
        single.p99 / 1000.0,
        agg.p99 / 1000.0
    );
    println!(
        "{:<22} {:>11.2}KB {:>11.2}KB",
        "max / TTI",
        single.max / 1000.0,
        agg.max / 1000.0
    );
    println!(
        "\np95/median ratio (aggregate): {:.1}x  (paper: ~10x)",
        agg.p95 / agg.median.max(1.0)
    );

    println!("\nFig. 3b — ms-scale fluctuation (first 20 TTIs of the aggregate, KB):");
    let snippet: Vec<String> = aggregate.sizes()[..20]
        .iter()
        .map(|b| format!("{:.1}", b / 1000.0))
        .collect();
    println!("  {}", snippet.join(" "));

    println!("\n§2.2 Gaussian pooling — provisioned waste grows with sqrt(n):");
    println!(
        "{:>8} {:>16} {:>14}",
        "n cells", "waste (z=3)", "waste/sqrt(n)"
    );
    let mut pooling = Vec::new();
    for n in [1u32, 2, 4, 8, 16, 32] {
        let w = gauss::expected_waste(n, 1.0, 3.0);
        println!("{n:>8} {w:>16.2} {:>14.2}", w / (n as f64).sqrt());
        pooling.push((n, w));
    }

    write_json(
        "fig03_traffic",
        &Fig3Results {
            single_cell: single,
            aggregate_3cells: agg,
            cdf_points_single: cdf_points(&traces[0]),
            cdf_points_aggregate: cdf_points(&aggregate),
            pooling_waste_by_n: pooling,
        },
    );
}
