//! Development probe: tail-latency distribution per scheduler/config.

use concordia_bench::quantile_or_nan;
use concordia_core::{run_experiment, Colocation, SchedulerChoice, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::Nanos;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let load: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    for (label, mut cfg) in [
        ("100MHz", SimConfig::paper_100mhz()),
        ("20MHz", SimConfig::paper_20mhz()),
    ] {
        cfg.duration = Nanos::from_secs(secs);
        cfg.load = load;
        for sched in [SchedulerChoice::concordia(), SchedulerChoice::FlexRan] {
            for colo in [
                Colocation::Isolated,
                Colocation::Single(WorkloadKind::Redis),
            ] {
                let mut c = cfg.clone();
                c.scheduler = sched;
                c.colocation = colo;
                let r = run_experiment(c);
                println!(
                    "{label:>7} {:<10} {:<9} viol {:>4} rel {:.6} mean {:>5.0} p99.99 {:>6.0} p99.999 {:>6.0} reclaimed {:>4.1}% wakes {:>6} stall% {:>5.2}",
                    r.scheduler,
                    r.colocation,
                    r.metrics.violations,
                    r.metrics.reliability,
                    r.metrics.mean_latency_us,
                    quantile_or_nan(r.metrics.p9999_latency_us),
                    quantile_or_nan(r.metrics.p99999_latency_us),
                    r.metrics.reclaimed_fraction * 100.0,
                    r.metrics.wake_events,
                    r.metrics.stall_cycles_pct,
                );
            }
        }
    }
}
