//! Fig. 11 — tail TTI processing latency (99.99 % / 99.999 %) of Concordia
//! vs vanilla FlexRAN in the presence of various workloads (§6.2).
//!
//! Paper claims reproduced here:
//! * in isolation, both schedulers meet the deadline at 99.999 %;
//! * under any collocated workload, vanilla FlexRAN's tail latency grows
//!   past the deadline (it can no longer provide 99.999 % or even
//!   99.99 %, with MLPerf the mildest case);
//! * Concordia maintains 99.999 % reliability in all cases.
//!
//! Grid: {20 MHz × 7 cells, 100 MHz × 2 cells} × {Concordia, FlexRAN} ×
//! {isolated, Nginx, Redis, TPCC, MLPerf}, 8-core pools.

use concordia_bench::{banner, quantile_or_nan, write_json, RunLength};
use concordia_core::{run_experiment, Colocation, SchedulerChoice, SimConfig};
use concordia_platform::workloads::WorkloadKind;
use concordia_ran::Nanos;
use serde::Serialize;

#[derive(Serialize)]
struct Fig11Row {
    config: String,
    scheduler: String,
    colocation: String,
    mean_us: f64,
    p9999_us: f64,
    p99999_us: f64,
    deadline_us: f64,
    reliability: f64,
    five_nines: bool,
}

fn main() {
    let len = RunLength::from_args();
    let seed = concordia_bench::seed_from_args();
    banner(
        "Fig. 11 (tail slot latency grid: scheduler x config x workload)",
        "Concordia keeps 99.999% everywhere; FlexRAN breaches under colocation",
    );

    let colocations = [
        Colocation::Isolated,
        Colocation::Single(WorkloadKind::Nginx),
        Colocation::Single(WorkloadKind::Redis),
        Colocation::Single(WorkloadKind::Tpcc),
        Colocation::Single(WorkloadKind::MlPerf),
    ];

    let mut rows = Vec::new();
    for (name, template) in [
        ("20MHz x7", SimConfig::paper_20mhz()),
        ("100MHz x2", SimConfig::paper_100mhz()),
    ] {
        for sched in [SchedulerChoice::concordia(), SchedulerChoice::FlexRan] {
            println!(
                "\n{name} / {} (deadline {}us):",
                match sched {
                    SchedulerChoice::Concordia(_) => "Concordia",
                    _ => "FlexRAN",
                },
                template.cell.deadline.as_micros_f64()
            );
            println!(
                "{:<10} {:>10} {:>12} {:>13} {:>12} {:>8}",
                "colocated", "mean(us)", "p99.99(us)", "p99.999(us)", "reliability", "5-nines"
            );
            for colo in colocations {
                let mut cfg = template.clone();
                cfg.cores = 8; // Fig. 11: all experiments on 8-core pools
                cfg.duration = Nanos::from_secs(len.online_secs());
                cfg.profiling_slots = len.profiling_slots();
                cfg.scheduler = sched;
                cfg.colocation = colo;
                cfg.seed = seed;
                let r = run_experiment(cfg);
                let five = r.five_nines();
                println!(
                    "{:<10} {:>10.0} {:>12.0} {:>13.0} {:>12.6} {:>8}",
                    r.colocation,
                    r.metrics.mean_latency_us,
                    quantile_or_nan(r.metrics.p9999_latency_us),
                    quantile_or_nan(r.metrics.p99999_latency_us),
                    r.metrics.reliability,
                    if five { "yes" } else { "NO" }
                );
                rows.push(Fig11Row {
                    config: name.into(),
                    scheduler: r.scheduler.clone(),
                    colocation: r.colocation.clone(),
                    mean_us: r.metrics.mean_latency_us,
                    p9999_us: quantile_or_nan(r.metrics.p9999_latency_us),
                    p99999_us: quantile_or_nan(r.metrics.p99999_latency_us),
                    deadline_us: r.deadline_us,
                    reliability: r.metrics.reliability,
                    five_nines: five,
                });
            }
        }
    }

    // Headline check.
    let conc_fail = rows
        .iter()
        .filter(|r| r.scheduler == "concordia" && !r.five_nines)
        .count();
    let flex_colo_fail = rows
        .iter()
        .filter(|r| r.scheduler == "flexran" && r.colocation != "isolated" && !r.five_nines)
        .count();
    println!(
        "\nConcordia cells failing 5-nines: {conc_fail}/10; FlexRAN collocated cells failing: {flex_colo_fail}/8"
    );

    write_json("fig11_tail_latency", &rows);
}
