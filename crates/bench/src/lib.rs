//! # concordia-bench
//!
//! The per-figure/per-table experiment harness. Every binary in `src/bin`
//! regenerates one table or figure of the paper's evaluation (see
//! DESIGN.md §3 for the index), printing the same rows/series the paper
//! reports and writing machine-readable JSON under `bench-results/`.
//!
//! Shared here: output handling, run-length presets and tiny table
//! formatting.

use serde::Serialize;
use std::path::PathBuf;

/// Run-length preset parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLength {
    /// `--quick`: seconds-scale sanity runs.
    Quick,
    /// Default: runs with enough slots for 99.99 % tails.
    Standard,
    /// `--long`: the closest to the paper's 15-minute runs.
    Long,
}

impl RunLength {
    /// Parses `--quick` / `--long` from the process arguments.
    pub fn from_args() -> RunLength {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            RunLength::Quick
        } else if args.iter().any(|a| a == "--long") {
            RunLength::Long
        } else {
            RunLength::Standard
        }
    }

    /// Online-phase duration in seconds for this preset.
    pub fn online_secs(self) -> u64 {
        match self {
            RunLength::Quick => 2,
            RunLength::Standard => 10,
            RunLength::Long => 60,
        }
    }

    /// Offline profiling slots for this preset.
    pub fn profiling_slots(self) -> usize {
        match self {
            RunLength::Quick => 400,
            RunLength::Standard => 2_000,
            RunLength::Long => 4_000,
        }
    }
}

/// Parses `--seed N` (default 2021).
pub fn seed_from_args() -> u64 {
    u64_flag("--seed", 2021)
}

/// Parses a `--flag N` integer from the process arguments.
pub fn u64_flag(name: &str, default: u64) -> u64 {
    flag_value(name).unwrap_or(default)
}

/// Parses `--cells N` (pooled cells; default from the scenario).
pub fn cells_from_args(default: u32) -> u32 {
    (u64_flag("--cells", default as u64) as u32).max(1)
}

/// Parses `--jobs N` (worker threads; default: all available cores).
/// The runner merges results in input order, so the value never changes
/// a byte of output — only wall-clock time.
pub fn jobs_from_args() -> usize {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    (u64_flag("--jobs", default as u64) as usize).max(1)
}

/// Parses a `--flag X.Y` float from the process arguments.
pub fn f64_flag(name: &str, default: f64) -> f64 {
    flag_value(name).unwrap_or(default)
}

/// True when a bare `--flag` is present in the process arguments.
pub fn bool_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Unwraps an optional tail quantile for a numeric report row; empty
/// recorders surface as NaN, which the JSON writer renders as `null`.
pub fn quantile_or_nan(q: Option<f64>) -> f64 {
    q.unwrap_or(f64::NAN)
}

fn flag_value<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

/// Directory for the JSON results (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(
        std::env::var("CONCORDIA_RESULTS_DIR").unwrap_or_else(|_| "bench-results".into()),
    );
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes one experiment's JSON next to the printed output.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results");
    println!("\n[results written to {}]", path.display());
}

/// Prints a header banner naming the figure/table being reproduced.
pub fn banner(id: &str, claim: &str) {
    println!("{}", "=".repeat(78));
    println!("Reproducing {id}");
    println!("Paper claim: {claim}");
    println!("{}", "=".repeat(78));
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_up() {
        assert!(RunLength::Quick.online_secs() < RunLength::Standard.online_secs());
        assert!(RunLength::Standard.online_secs() < RunLength::Long.online_secs());
        assert!(RunLength::Quick.profiling_slots() < RunLength::Long.profiling_slots());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.7), "70.0%");
        assert_eq!(pct(0.056), "5.6%");
    }

    #[test]
    fn default_seed() {
        assert_eq!(seed_from_args(), 2021);
    }

    #[test]
    fn flags_fall_back_to_defaults() {
        // The test binary's argv carries no such flags, so both helpers
        // must return the caller's default.
        assert_eq!(u64_flag("--windows", 200), 200);
        assert!((f64_flag("--load", 0.6) - 0.6).abs() < 1e-12);
        assert!(!bool_flag("--trace"));
    }

    #[test]
    fn quantile_unwrap_preserves_values_and_marks_empty() {
        assert_eq!(quantile_or_nan(Some(912.5)), 912.5);
        assert!(quantile_or_nan(None).is_nan());
    }
}
