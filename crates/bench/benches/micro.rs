//! Criterion microbenches for the latency-critical paths.
//!
//! Fig. 15a of the paper is a *measured* claim about Concordia's own code:
//! the scheduler runs every 20 µs and must stay far below that; the WCET
//! predictor runs every TTI. These benches measure our implementations on
//! real hardware:
//!
//! * `scheduler_tick/N` — one `target_cores` evaluation with N cells'
//!   worth of active DAGs (paper: < 2 µs up to 7 cells);
//! * `predictor_tti/N` — predicting every task of an N-cell TTI
//!   (paper: 4 µs at 1 cell → 24 µs at 7);
//! * `qdt_predict` / `qdt_observe` — single quantile-decision-tree
//!   operations (Algorithm 2's hot path);
//! * `ring_push` — the 5 000-entry leaf ring buffer;
//! * `dag_build_uplink` — per-slot DAG construction;
//! * `cost_sample` — one task-runtime draw in the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use concordia_core::profile::{profile, random_workload, train_bank};
use concordia_core::PredictorChoice;
use concordia_platform::sched_api::{DagProgress, PoolScheduler, PoolView};
use concordia_predictor::qdt::QuantileDecisionTree;
use concordia_predictor::tree::TreeConfig;
use concordia_predictor::WcetPredictor;
use concordia_ran::cost::CostModel;
use concordia_ran::dag::build_uplink_dag;
use concordia_ran::features::{extract, handpicked};
use concordia_ran::numerology::SlotDirection;
use concordia_ran::task::TaskKind;
use concordia_ran::{CellConfig, Nanos};
use concordia_sched::concordia::ConcordiaScheduler;
use concordia_stats::ring::MaxRingBuffer;
use concordia_stats::rng::Rng;

fn dags_for_cells(cells: u32, seed: u64) -> Vec<DagProgress> {
    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let mut rng = Rng::new(seed);
    let mut dags = Vec::new();
    for c in 0..cells {
        for dir in [SlotDirection::Uplink, SlotDirection::Downlink] {
            let wl = random_workload(&cell, dir, &mut rng);
            let dag = concordia_ran::dag::build_dag(&cell, c, 0, Nanos::ZERO, &wl);
            dags.push(DagProgress {
                cell: 0,
                arrival: Nanos::ZERO,
                deadline: Nanos::from_millis(2),
                remaining_work: dag.total_work(&cost),
                remaining_critical_path: dag.critical_path(&cost),
            });
        }
    }
    dags
}

fn bench_scheduler_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_tick");
    for cells in [1u32, 4, 7] {
        let dags = dags_for_cells(cells, 42);
        let mut sched = ConcordiaScheduler::default_paper();
        let view = PoolView {
            now: Nanos::from_micros(100),
            total_cores: 8,
            granted_cores: 4,
            dags: &dags,
            ready_tasks: 4,
            running_tasks: 3,
            oldest_ready_wait: Nanos::from_micros(5),
            recent_utilization: 0.5,
        };
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| black_box(sched.target_cores(black_box(&view))))
        });
    }
    group.finish();
}

fn bench_predictor_tti(c: &mut Criterion) {
    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let dataset = profile(&cell, &cost, 800, 8, 7);
    let bank = train_bank(&dataset, PredictorChoice::QuantileDt, &cost);

    let mut group = c.benchmark_group("predictor_tti");
    for cells in [1u32, 4, 7] {
        let mut rng = Rng::new(100 + cells as u64);
        let mut tasks = Vec::new();
        for c_id in 0..cells {
            for dir in [SlotDirection::Uplink, SlotDirection::Downlink] {
                let wl = random_workload(&cell, dir, &mut rng);
                let dag = concordia_ran::dag::build_dag(&cell, c_id, 0, Nanos::ZERO, &wl);
                for node in &dag.nodes {
                    tasks.push((node.task.kind, extract(&node.task.params)));
                }
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for (kind, x) in &tasks {
                    if let Some(p) = bank.predict(*kind, x) {
                        acc += p.as_micros_f64();
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_qdt_ops(c: &mut Criterion) {
    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let dataset = profile(&cell, &cost, 800, 8, 9);
    let decode = dataset.samples(TaskKind::LdpcDecode);
    let feats: Vec<usize> = handpicked(TaskKind::LdpcDecode)
        .iter()
        .map(|&f| f as usize)
        .collect();
    let mut qdt = QuantileDecisionTree::fit(decode, &feats, &TreeConfig::default());
    let x = decode[decode.len() / 2].x;

    c.bench_function("qdt_predict", |b| {
        b.iter(|| black_box(qdt.predict_us(black_box(&x))))
    });
    c.bench_function("qdt_observe", |b| {
        b.iter(|| qdt.observe(black_box(&x), black_box(123.4)))
    });
}

fn bench_ring_push(c: &mut Criterion) {
    let mut ring = MaxRingBuffer::new(5_000);
    for i in 0..5_000 {
        ring.push(i as f64);
    }
    let mut v = 0.0f64;
    c.bench_function("ring_push", |b| {
        b.iter(|| {
            v += 1.0;
            ring.push(black_box(v % 400.0));
            black_box(ring.max())
        })
    });
}

fn bench_dag_build(c: &mut Criterion) {
    let cell = CellConfig::tdd_100mhz();
    let mut rng = Rng::new(11);
    let wl = random_workload(&cell, SlotDirection::Uplink, &mut rng);
    c.bench_function("dag_build_uplink", |b| {
        b.iter(|| black_box(build_uplink_dag(&cell, 0, 0, Nanos::ZERO, black_box(&wl))))
    });
}

fn bench_cost_sample(c: &mut Criterion) {
    let cost = CostModel::new();
    let mut rng = Rng::new(12);
    let p = concordia_ran::TaskParams {
        n_cbs: 6,
        cb_bits: 8448,
        tb_bits: 50_688,
        mcs_index: 16,
        modulation_order: 6,
        code_rate: 0.7,
        snr_db: 20.0,
        layers: 2,
        prbs: 60,
        pool_cores: 4,
        ..Default::default()
    };
    c.bench_function("cost_sample", |b| {
        b.iter(|| {
            black_box(cost.sample_runtime(TaskKind::LdpcDecode, black_box(&p), 1.1, &mut rng))
        })
    });
}

criterion_group!(
    benches,
    bench_scheduler_tick,
    bench_predictor_tti,
    bench_qdt_ops,
    bench_ring_push,
    bench_dag_build,
    bench_cost_sample
);
criterion_main!(benches);
