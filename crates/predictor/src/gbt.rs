//! Gradient-boosted-trees WCET baseline (§6.4, Fig. 14).
//!
//! A standard least-squares gradient-boosting ensemble of shallow CART
//! trees predicts the runtime mean; the WCET upper bound adds the
//! `confidence` quantile of the (online-updated) residuals, mirroring the
//! linear baseline so the comparison isolates the *mean model* quality.
//!
//! The paper's finding: GBT matches the quantile decision tree on deadline
//! misses but has a larger average prediction error (Fig. 14b), i.e. it is
//! more pessimistic where it succeeds — which costs reclaimed CPU.

use crate::api::{TrainingSample, WcetPredictor};
use crate::tree::{Tree, TreeConfig};
use concordia_ran::features::FeatureVec;
use concordia_stats::ring::MaxRingBuffer;
use concordia_stats::summary::normal_quantile;

/// Residual ring-buffer capacity for online adaptation.
const RESIDUAL_BUFFER: usize = 5_000;

/// Gradient-boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbtConfig {
    /// Boosting rounds.
    pub rounds: usize,
    /// Learning rate (shrinkage).
    pub learning_rate: f64,
    /// Per-round tree shape.
    pub tree: TreeConfig,
}

impl Default for GbtConfig {
    fn default() -> Self {
        GbtConfig {
            rounds: 40,
            learning_rate: 0.15,
            tree: TreeConfig {
                max_depth: 3,
                min_leaf: 30,
                n_thresholds: 12,
            },
        }
    }
}

/// One boosted stage: a tree structure plus its leaf values.
struct Stage {
    tree: Tree,
    leaf_values: Vec<f64>,
}

/// Gradient-boosted regression with residual-quantile upper bounding.
pub struct GradientBoosting {
    feats: Vec<usize>,
    base: f64,
    stages: Vec<Stage>,
    learning_rate: f64,
    confidence: f64,
    residuals: MaxRingBuffer,
}

impl GradientBoosting {
    /// Fits the ensemble on `samples` restricted to `feats`.
    pub fn fit(
        samples: &[TrainingSample],
        feats: &[usize],
        confidence: f64,
        cfg: &GbtConfig,
    ) -> Self {
        assert!(!samples.is_empty());
        let xs: Vec<FeatureVec> = samples.iter().map(|s| s.x).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.runtime_us).collect();
        let base = ys.iter().sum::<f64>() / ys.len() as f64;

        let mut pred = vec![base; ys.len()];
        let mut stages = Vec::with_capacity(cfg.rounds);
        for _ in 0..cfg.rounds {
            // Least-squares gradients are plain residuals.
            let resid: Vec<f64> = ys.iter().zip(&pred).map(|(y, p)| y - p).collect();
            let (tree, leaf_samples) = Tree::fit(&xs, &resid, feats, &cfg.tree);
            if tree.n_leaves() <= 1 {
                break; // residuals exhausted
            }
            let leaf_values: Vec<f64> = leaf_samples
                .iter()
                .map(|idxs| idxs.iter().map(|&i| resid[i]).sum::<f64>() / idxs.len().max(1) as f64)
                .collect();
            for (i, x) in xs.iter().enumerate() {
                pred[i] += cfg.learning_rate * leaf_values[tree.leaf_of(x)];
            }
            stages.push(Stage { tree, leaf_values });
        }

        let mut gbt = GradientBoosting {
            feats: feats.to_vec(),
            base,
            stages,
            learning_rate: cfg.learning_rate,
            confidence,
            residuals: MaxRingBuffer::new(RESIDUAL_BUFFER),
        };
        let start = samples.len().saturating_sub(RESIDUAL_BUFFER);
        for s in &samples[start..] {
            let r = s.runtime_us - gbt.mean_us(&s.x);
            gbt.residuals.push(r);
        }
        gbt
    }

    /// The ensemble mean prediction.
    pub fn mean_us(&self, x: &FeatureVec) -> f64 {
        let mut v = self.base;
        for s in &self.stages {
            v += self.learning_rate * s.leaf_values[s.tree.leaf_of(x)];
        }
        v
    }

    /// Number of fitted boosting stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Features used (for introspection).
    pub fn features(&self) -> &[usize] {
        &self.feats
    }

    /// Gaussian prediction-interval bound: `mean + z(confidence) * sd` of
    /// the recent residuals — the standard "prediction interval" recipe the
    /// paper applies to its regression baselines (§6.4). A single global
    /// interval under-covers the large-input regime when the noise is
    /// multiplicative, which is exactly the Fig. 14 failure mode.
    fn residual_bound(&self) -> f64 {
        let xs = self.residuals.samples();
        if xs.len() < 2 {
            return 0.0;
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0);
        mean + normal_quantile(self.confidence) * var.sqrt()
    }
}

impl WcetPredictor for GradientBoosting {
    fn predict_us(&self, x: &FeatureVec) -> f64 {
        (self.mean_us(x) + self.residual_bound()).max(0.0)
    }

    fn observe(&mut self, x: &FeatureVec, runtime_us: f64) {
        let r = runtime_us - self.mean_us(x);
        self.residuals.push(r);
    }

    fn name(&self) -> &'static str {
        "gradient_boosting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concordia_ran::features::NUM_FEATURES;
    use concordia_stats::rng::Rng;

    fn fv(v0: f64) -> FeatureVec {
        let mut x = [0.0; NUM_FEATURES];
        x[0] = v0;
        x
    }

    #[test]
    fn learns_nonlinear_relationship() {
        // y = 5 v^2: a linear model cannot track this; boosting can.
        let mut rng = Rng::new(1);
        let samples: Vec<TrainingSample> = (0..8_000)
            .map(|_| {
                let v = rng.f64() * 10.0;
                TrainingSample {
                    x: fv(v),
                    runtime_us: 5.0 * v * v + rng.normal(),
                }
            })
            .collect();
        let gbt = GradientBoosting::fit(&samples, &[0], 0.999, &GbtConfig::default());
        for v in [1.0, 5.0, 9.0] {
            let truth = 5.0 * v * v;
            let mean = gbt.mean_us(&fv(v));
            assert!(
                (mean - truth).abs() < truth.max(20.0) * 0.25,
                "v={v}: mean {mean} truth {truth}"
            );
        }
    }

    #[test]
    fn boosting_improves_over_single_stage() {
        let mut rng = Rng::new(2);
        let samples: Vec<TrainingSample> = (0..5_000)
            .map(|_| {
                let v = rng.f64() * 10.0;
                TrainingSample {
                    x: fv(v),
                    runtime_us: 30.0 * v + rng.normal(),
                }
            })
            .collect();
        let mae = |rounds| {
            let cfg = GbtConfig {
                rounds,
                ..GbtConfig::default()
            };
            let g = GradientBoosting::fit(&samples, &[0], 0.999, &cfg);
            samples
                .iter()
                .map(|s| (g.mean_us(&s.x) - s.runtime_us).abs())
                .sum::<f64>()
                / samples.len() as f64
        };
        let one = mae(1);
        let forty = mae(40);
        assert!(forty < one * 0.5, "1 round {one} vs 40 rounds {forty}");
    }

    #[test]
    fn upper_bound_covers_and_online_adapts() {
        let mut rng = Rng::new(3);
        let gen = |rng: &mut Rng, scale: f64| {
            let v = rng.f64() * 10.0;
            (v, (10.0 + 20.0 * v) * scale * rng.lognormal(0.0, 0.05))
        };
        let samples: Vec<TrainingSample> = (0..10_000)
            .map(|_| {
                let (v, y) = gen(&mut rng, 1.0);
                TrainingSample {
                    x: fv(v),
                    runtime_us: y,
                }
            })
            .collect();
        let mut gbt = GradientBoosting::fit(&samples, &[0], 0.9999, &GbtConfig::default());
        let mut misses = 0;
        for _ in 0..5_000 {
            let (v, y) = gen(&mut rng, 1.0);
            if y > gbt.predict_us(&fv(v)) {
                misses += 1;
            }
        }
        assert!(misses < 20, "isolated misses {misses}");
        // Interference regime: observe, then re-check coverage.
        for _ in 0..8_000 {
            let (v, y) = gen(&mut rng, 1.3);
            gbt.observe(&fv(v), y);
        }
        let mut misses2 = 0;
        for _ in 0..5_000 {
            let (v, y) = gen(&mut rng, 1.3);
            if y > gbt.predict_us(&fv(v)) {
                misses2 += 1;
            }
        }
        assert!(misses2 < 40, "interfered misses {misses2}");
    }

    #[test]
    fn constant_target_uses_base_only() {
        let samples: Vec<TrainingSample> = (0..500)
            .map(|i| TrainingSample {
                x: fv(i as f64),
                runtime_us: 12.0,
            })
            .collect();
        let gbt = GradientBoosting::fit(&samples, &[0], 0.99, &GbtConfig::default());
        assert_eq!(gbt.n_stages(), 0);
        assert!((gbt.mean_us(&fv(3.0)) - 12.0).abs() < 1e-9);
    }
}
