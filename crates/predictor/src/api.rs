//! The predictor interface and the per-task model bank.
//!
//! §3: "the predictor maintains a separate quantile decision tree for each
//! vRAN task"; every predictor variant in this crate implements
//! [`WcetPredictor`], and [`ModelBank`] holds one model per [`TaskKind`].

use concordia_ran::features::FeatureVec;
use concordia_ran::task::TaskKind;
use concordia_ran::time::Nanos;

/// One offline training observation: features plus measured runtime (µs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingSample {
    /// Task input features at execution time.
    pub x: FeatureVec,
    /// Observed runtime in microseconds.
    pub runtime_us: f64,
}

/// A worst-case-execution-time predictor for a single task kind.
///
/// `predict_us` is the hot path (runs every TTI, §5); `observe` feeds the
/// online adaptation of §4.2 (Algorithm 2's training step).
pub trait WcetPredictor: Send {
    /// Predicted WCET in microseconds for a task with features `x`.
    fn predict_us(&self, x: &FeatureVec) -> f64;

    /// Records an observed runtime for online adaptation.
    fn observe(&mut self, x: &FeatureVec, runtime_us: f64);

    /// Short model name for reports.
    fn name(&self) -> &'static str;

    /// Predicted WCET as a duration.
    fn predict(&self, x: &FeatureVec) -> Nanos {
        Nanos::from_micros_f64(self.predict_us(x))
    }

    /// Which internal partition (leaf) `x` routes to, for models that have
    /// one. The predictor control plane uses this to maintain per-leaf
    /// drift statistics; structureless models return `None`.
    fn route(&self, _x: &FeatureVec) -> Option<usize> {
        None
    }

    /// Re-fits the model's *statistics* from recent samples, keeping its
    /// structure frozen (for a quantile tree: leaf buffers are rebuilt,
    /// the CART splits are not). Returns `false` for models that cannot
    /// be re-fitted in place; such models stay quarantined on fallback.
    fn refit(&mut self, _samples: &[TrainingSample]) -> bool {
        false
    }

    /// Per-leaf reference quantiles of the current leaf contents (empty
    /// for models without leaves). The control plane snapshots these at
    /// training time and tests online samples against them.
    fn reference_quantiles(&self, _q: f64) -> Vec<f64> {
        Vec::new()
    }
}

/// One predictor per task kind, as the paper prescribes.
pub struct ModelBank {
    models: Vec<Option<Box<dyn WcetPredictor>>>,
}

impl ModelBank {
    /// An empty bank (all kinds unmodeled).
    pub fn new() -> Self {
        ModelBank {
            models: (0..TaskKind::ALL.len()).map(|_| None).collect(),
        }
    }

    /// Installs a model for `kind`, replacing any previous one.
    pub fn insert(&mut self, kind: TaskKind, model: Box<dyn WcetPredictor>) {
        self.models[kind.index()] = Some(model);
    }

    /// The model for `kind`, if installed.
    pub fn get(&self, kind: TaskKind) -> Option<&dyn WcetPredictor> {
        self.models[kind.index()].as_deref()
    }

    /// Mutable access for online observation.
    pub fn get_mut(&mut self, kind: TaskKind) -> Option<&mut (dyn WcetPredictor + '_)> {
        match &mut self.models[kind.index()] {
            Some(b) => Some(b.as_mut()),
            None => None,
        }
    }

    /// Predicts the WCET for a task, or `None` if the kind is unmodeled.
    pub fn predict(&self, kind: TaskKind, x: &FeatureVec) -> Option<Nanos> {
        self.get(kind).map(|m| m.predict(x))
    }

    /// Feeds an observation to the kind's model (no-op when unmodeled).
    pub fn observe(&mut self, kind: TaskKind, x: &FeatureVec, runtime_us: f64) {
        if let Some(m) = &mut self.models[kind.index()] {
            m.observe(x, runtime_us);
        }
    }

    /// Number of installed models.
    pub fn len(&self) -> usize {
        self.models.iter().filter(|m| m.is_some()).count()
    }

    /// True when no model is installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ModelBank {
    fn default() -> Self {
        Self::new()
    }
}

/// A constant predictor: always returns the same WCET. The degenerate
/// single-value scheme conventional real-time systems use (§8: "the WCET
/// prediction does not adjust dynamically at runtime based on the input").
#[derive(Debug, Clone, Copy)]
pub struct FixedPredictor {
    /// The constant prediction (µs).
    pub wcet_us: f64,
}

impl WcetPredictor for FixedPredictor {
    fn predict_us(&self, _x: &FeatureVec) -> f64 {
        self.wcet_us
    }
    fn observe(&mut self, _x: &FeatureVec, _runtime_us: f64) {}
    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Predicts the maximum runtime observed so far (grows monotonically) —
/// a simple adaptive single-value baseline used in tests and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxObservedPredictor {
    max_us: f64,
}

impl WcetPredictor for MaxObservedPredictor {
    fn predict_us(&self, _x: &FeatureVec) -> f64 {
        self.max_us
    }
    fn observe(&mut self, _x: &FeatureVec, runtime_us: f64) {
        if runtime_us > self.max_us {
            self.max_us = runtime_us;
        }
    }
    fn name(&self) -> &'static str {
        "max_observed"
    }
}

/// Wraps any predictor and inflates its predictions by a constant factor —
/// the control plane's conservative fallback: a quarantined quantile tree
/// is replaced by an inflated linear model so reliability degrades
/// gracefully (more pessimism, fewer reclaimed cores) instead of silently.
pub struct InflatedPredictor {
    inner: Box<dyn WcetPredictor>,
    factor: f64,
}

impl InflatedPredictor {
    /// Wraps `inner`, multiplying every prediction by `factor` (≥ 1.0).
    pub fn new(inner: Box<dyn WcetPredictor>, factor: f64) -> Self {
        InflatedPredictor {
            inner,
            factor: factor.max(1.0),
        }
    }

    /// The inflation factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl WcetPredictor for InflatedPredictor {
    fn predict_us(&self, x: &FeatureVec) -> f64 {
        self.inner.predict_us(x) * self.factor
    }
    fn observe(&mut self, x: &FeatureVec, runtime_us: f64) {
        self.inner.observe(x, runtime_us);
    }
    fn name(&self) -> &'static str {
        "inflated_fallback"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concordia_ran::features::NUM_FEATURES;

    const X: FeatureVec = [0.0; NUM_FEATURES];

    #[test]
    fn fixed_predictor_is_constant() {
        let mut p = FixedPredictor { wcet_us: 42.0 };
        assert_eq!(p.predict_us(&X), 42.0);
        p.observe(&X, 1000.0);
        assert_eq!(p.predict_us(&X), 42.0);
        assert_eq!(p.predict(&X), Nanos::from_micros(42));
    }

    #[test]
    fn max_observed_tracks_maximum() {
        let mut p = MaxObservedPredictor::default();
        assert_eq!(p.predict_us(&X), 0.0);
        p.observe(&X, 10.0);
        p.observe(&X, 5.0);
        assert_eq!(p.predict_us(&X), 10.0);
        p.observe(&X, 20.0);
        assert_eq!(p.predict_us(&X), 20.0);
    }

    #[test]
    fn bank_routes_by_kind() {
        let mut bank = ModelBank::new();
        assert!(bank.is_empty());
        bank.insert(
            TaskKind::LdpcDecode,
            Box::new(FixedPredictor { wcet_us: 100.0 }),
        );
        bank.insert(TaskKind::Fft, Box::new(FixedPredictor { wcet_us: 7.0 }));
        assert_eq!(bank.len(), 2);
        assert_eq!(
            bank.predict(TaskKind::LdpcDecode, &X),
            Some(Nanos::from_micros(100))
        );
        assert_eq!(bank.predict(TaskKind::Fft, &X), Some(Nanos::from_micros(7)));
        assert_eq!(bank.predict(TaskKind::Ifft, &X), None);
    }

    #[test]
    fn default_lifecycle_hooks_are_inert() {
        // Structureless models: no routing, no refit, no references.
        let mut p = FixedPredictor { wcet_us: 10.0 };
        assert_eq!(p.route(&X), None);
        assert!(!p.refit(&[TrainingSample {
            x: X,
            runtime_us: 5.0
        }]));
        assert!(p.reference_quantiles(0.95).is_empty());
    }

    #[test]
    fn inflated_predictor_scales_and_forwards() {
        let mut p = InflatedPredictor::new(Box::new(MaxObservedPredictor::default()), 1.5);
        assert_eq!(p.predict_us(&X), 0.0);
        p.observe(&X, 100.0);
        assert_eq!(p.predict_us(&X), 150.0);
        assert_eq!(p.factor(), 1.5);
        // Factors below 1.0 are clamped: the fallback never under-covers
        // its inner model.
        let q = InflatedPredictor::new(Box::new(FixedPredictor { wcet_us: 10.0 }), 0.5);
        assert_eq!(q.predict_us(&X), 10.0);
    }

    #[test]
    fn bank_observe_reaches_the_model() {
        let mut bank = ModelBank::new();
        bank.insert(
            TaskKind::LdpcDecode,
            Box::new(MaxObservedPredictor::default()),
        );
        bank.observe(TaskKind::LdpcDecode, &X, 33.0);
        bank.observe(TaskKind::Ifft, &X, 99.0); // unmodeled: ignored
        assert_eq!(
            bank.predict(TaskKind::LdpcDecode, &X),
            Some(Nanos::from_micros(33))
        );
    }
}
