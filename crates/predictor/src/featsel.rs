//! Feature selection — Algorithm 1 of the paper.
//!
//! 1. Rank candidate features by distance correlation with the task runtime
//!    and keep the top `N`.
//! 2. Backwards elimination down to `M` features, scored by the validation
//!    error of a small decision tree.
//! 3. Union with the hand-picked domain-expertise features.

use crate::api::TrainingSample;
use crate::tree::{Tree, TreeConfig};
use concordia_ran::features::{Feature, FeatureVec, NUM_FEATURES};
use concordia_stats::dcor::distance_correlation;

/// Configuration of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatSelConfig {
    /// Keep the `n_dcor` most distance-correlated features.
    pub n_dcor: usize,
    /// Backwards-eliminate down to `m_final` features.
    pub m_final: usize,
    /// Subsample size for the O(n²) distance-correlation estimate.
    pub dcor_subsample: usize,
    /// Train/validation split fraction for elimination scoring.
    pub train_fraction: f64,
}

impl Default for FeatSelConfig {
    fn default() -> Self {
        FeatSelConfig {
            n_dcor: 8,
            m_final: 4,
            dcor_subsample: 800,
            train_fraction: 0.7,
        }
    }
}

/// Ranks all features by distance correlation with the runtime, descending.
/// Returns `(feature index, dcor)` pairs.
pub fn dcor_ranking(samples: &[TrainingSample], subsample: usize) -> Vec<(usize, f64)> {
    assert!(samples.len() >= 4, "need samples to rank features");
    let take = samples.len().min(subsample);
    // Deterministic stride subsample (samples are already i.i.d. in time).
    let stride = samples.len() / take;
    let picked: Vec<&TrainingSample> = samples.iter().step_by(stride.max(1)).take(take).collect();
    let ys: Vec<f64> = picked.iter().map(|s| s.runtime_us).collect();
    let mut ranking: Vec<(usize, f64)> = (0..NUM_FEATURES)
        .map(|f| {
            let xs: Vec<f64> = picked.iter().map(|s| s.x[f]).collect();
            (f, distance_correlation(&xs, &ys))
        })
        .collect();
    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN dcor"));
    ranking
}

/// Validation mean-absolute-error of a small tree restricted to `feats`.
fn validation_mae(
    train_x: &[FeatureVec],
    train_y: &[f64],
    val_x: &[FeatureVec],
    val_y: &[f64],
    feats: &[usize],
) -> f64 {
    let cfg = TreeConfig {
        max_depth: 6,
        min_leaf: 30,
        n_thresholds: 8,
    };
    let (tree, leaf_samples) = Tree::fit(train_x, train_y, feats, &cfg);
    // Leaf means as point predictions.
    let means: Vec<f64> = leaf_samples
        .iter()
        .map(|idxs| idxs.iter().map(|&i| train_y[i]).sum::<f64>() / idxs.len().max(1) as f64)
        .collect();
    val_x
        .iter()
        .zip(val_y)
        .map(|(x, &y)| (means[tree.leaf_of(x)] - y).abs())
        .sum::<f64>()
        / val_y.len() as f64
}

/// Backwards elimination: repeatedly drops the feature whose removal hurts
/// validation error the least, until `m_final` remain.
pub fn backwards_elimination(
    samples: &[TrainingSample],
    mut feats: Vec<usize>,
    m_final: usize,
    train_fraction: f64,
) -> Vec<usize> {
    assert!(m_final >= 1);
    let split = ((samples.len() as f64) * train_fraction) as usize;
    let split = split.clamp(1, samples.len() - 1);
    let train_x: Vec<FeatureVec> = samples[..split].iter().map(|s| s.x).collect();
    let train_y: Vec<f64> = samples[..split].iter().map(|s| s.runtime_us).collect();
    let val_x: Vec<FeatureVec> = samples[split..].iter().map(|s| s.x).collect();
    let val_y: Vec<f64> = samples[split..].iter().map(|s| s.runtime_us).collect();

    while feats.len() > m_final {
        let mut best: Option<(usize, f64)> = None; // (position to drop, mae)
        for pos in 0..feats.len() {
            let mut reduced = feats.clone();
            reduced.remove(pos);
            let mae = validation_mae(&train_x, &train_y, &val_x, &val_y, &reduced);
            if best.is_none_or(|(_, b)| mae < b) {
                best = Some((pos, mae));
            }
        }
        let (pos, _) = best.expect("non-empty candidate set");
        feats.remove(pos);
    }
    feats
}

/// Runs the full Algorithm 1: dcor top-N → backwards elimination to M →
/// union with hand-picked features. Returns a sorted, deduplicated feature
/// index list.
pub fn select_features(
    samples: &[TrainingSample],
    handpicked: &[Feature],
    cfg: &FeatSelConfig,
) -> Vec<usize> {
    let ranking = dcor_ranking(samples, cfg.dcor_subsample);
    let top: Vec<usize> = ranking
        .iter()
        .take(cfg.n_dcor)
        .filter(|(_, d)| *d > 0.0)
        .map(|(f, _)| *f)
        .collect();
    let kept = if top.len() > cfg.m_final {
        backwards_elimination(samples, top, cfg.m_final, cfg.train_fraction)
    } else {
        top
    };
    let mut out: Vec<usize> = kept;
    out.extend(handpicked.iter().map(|&f| f as usize));
    out.sort_unstable();
    out.dedup();
    if out.is_empty() {
        // A totally uninformative task (constant runtime): any feature does.
        out.push(0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use concordia_stats::rng::Rng;

    /// Runtime depends on features 0 (linear) and 7 (nonlinear); all others
    /// are noise.
    fn synthetic(n: usize, seed: u64) -> Vec<TrainingSample> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let mut x = [0.0; NUM_FEATURES];
                for slot in x.iter_mut() {
                    *slot = rng.f64() * 10.0;
                }
                let y = 20.0 * x[0] + 3.0 * (x[7] - 5.0).powi(2) + rng.normal() * 2.0;
                TrainingSample { x, runtime_us: y }
            })
            .collect()
    }

    #[test]
    fn dcor_ranks_informative_features_first() {
        let samples = synthetic(3_000, 1);
        let ranking = dcor_ranking(&samples, 600);
        let top2: Vec<usize> = ranking.iter().take(2).map(|(f, _)| *f).collect();
        assert!(top2.contains(&0), "ranking {ranking:?}");
        assert!(top2.contains(&7), "ranking {ranking:?}");
    }

    #[test]
    fn backwards_elimination_keeps_informative_features() {
        let samples = synthetic(3_000, 2);
        let kept = backwards_elimination(&samples, vec![0, 1, 2, 7, 9], 2, 0.7);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&0), "kept {kept:?}");
        assert!(kept.contains(&7), "kept {kept:?}");
    }

    #[test]
    fn select_features_unions_handpicked() {
        let samples = synthetic(2_000, 3);
        let cfg = FeatSelConfig {
            n_dcor: 4,
            m_final: 2,
            dcor_subsample: 400,
            train_fraction: 0.7,
        };
        // Hand-pick feature 15 (pool cores) even though it is noise here —
        // Algorithm 1 always unions the domain-expertise picks.
        let out = select_features(&samples, &[Feature::PoolCores], &cfg);
        assert!(out.contains(&(Feature::PoolCores as usize)), "{out:?}");
        assert!(out.contains(&0) || out.contains(&7), "{out:?}");
        // Sorted + deduplicated.
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(out, sorted);
    }

    #[test]
    fn constant_runtime_falls_back_to_nonempty_set() {
        let mut rng = Rng::new(4);
        let samples: Vec<TrainingSample> = (0..500)
            .map(|_| {
                let mut x = [0.0; NUM_FEATURES];
                for slot in x.iter_mut() {
                    *slot = rng.f64();
                }
                TrainingSample { x, runtime_us: 5.0 }
            })
            .collect();
        let out = select_features(&samples, &[], &FeatSelConfig::default());
        assert!(!out.is_empty());
    }
}
