//! Conventional single-value probabilistic WCET (pWCET) baseline — §6.3.
//!
//! Implements the measurement-based probabilistic timing-analysis recipe of
//! Cucu-Grosjean et al. [23]: fit an extreme-value (Gumbel) distribution to
//! block maxima of observed runtimes and take the quantile at the required
//! confidence (the paper uses 0.99999). One value per task, *regardless of
//! input* — which is exactly why it is pessimistic for small inputs
//! (Fig. 13: up to 20 % fewer reclaimed CPU cycles than Concordia).
//!
//! The baseline also adapts online: a ring of recent runtimes is refitted
//! periodically, so it competes fairly with Concordia's online phase.

use crate::api::{TrainingSample, WcetPredictor};
use concordia_ran::features::FeatureVec;
use concordia_stats::evt::GumbelFit;
use concordia_stats::ring::MaxRingBuffer;

/// Observation window for the online refit.
const ONLINE_BUFFER: usize = 10_000;
/// Observations between online refits.
const REFIT_EVERY: u64 = 1_000;

/// Single-value pWCET predictor via Gumbel block maxima.
pub struct PwcetEvt {
    wcet_us: f64,
    confidence: f64,
    block: usize,
    window: MaxRingBuffer,
    since_refit: u64,
}

impl PwcetEvt {
    /// Fits from offline samples at the given confidence (e.g. 0.99999)
    /// using block maxima of `block` consecutive observations.
    pub fn fit(samples: &[TrainingSample], confidence: f64, block: usize) -> Self {
        assert!(!samples.is_empty());
        let runtimes: Vec<f64> = samples.iter().map(|s| s.runtime_us).collect();
        let wcet_us = Self::estimate(&runtimes, confidence, block);
        let mut window = MaxRingBuffer::new(ONLINE_BUFFER);
        let start = runtimes.len().saturating_sub(ONLINE_BUFFER);
        for &r in &runtimes[start..] {
            window.push(r);
        }
        PwcetEvt {
            wcet_us,
            confidence,
            block,
            window,
            since_refit: 0,
        }
    }

    /// The pWCET estimate for a runtime sample: Gumbel block-maxima
    /// quantile, floored at the empirical maximum (a pWCET below an already
    /// observed runtime would be unsound).
    fn estimate(runtimes: &[f64], confidence: f64, block: usize) -> f64 {
        let emp_max = runtimes.iter().cloned().fold(0.0, f64::max);
        match GumbelFit::from_block_maxima(runtimes, block) {
            Some(fit) => fit.quantile(confidence).max(emp_max),
            None => emp_max,
        }
    }

    /// Current single-value estimate (µs).
    pub fn wcet_us(&self) -> f64 {
        self.wcet_us
    }
}

impl WcetPredictor for PwcetEvt {
    fn predict_us(&self, _x: &FeatureVec) -> f64 {
        self.wcet_us
    }

    fn observe(&mut self, _x: &FeatureVec, runtime_us: f64) {
        self.window.push(runtime_us);
        self.since_refit += 1;
        if self.since_refit >= REFIT_EVERY {
            self.since_refit = 0;
            self.wcet_us = Self::estimate(self.window.samples(), self.confidence, self.block);
        }
    }

    fn name(&self) -> &'static str {
        "pwcet_evt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concordia_ran::features::NUM_FEATURES;
    use concordia_stats::rng::Rng;

    const X: FeatureVec = [0.0; NUM_FEATURES];

    fn varied_samples(n: usize, seed: u64) -> Vec<TrainingSample> {
        // Decode-like: runtime spans 40..500 µs depending on input size —
        // but pWCET ignores the input.
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let cbs = rng.range_u64(1, 16) as f64;
                TrainingSample {
                    x: X,
                    runtime_us: (10.0 + 30.0 * cbs) * rng.lognormal(0.0, 0.05),
                }
            })
            .collect()
    }

    #[test]
    fn prediction_ignores_input() {
        let p = PwcetEvt::fit(&varied_samples(10_000, 1), 0.99999, 50);
        let mut x2 = X;
        x2[0] = 123.0;
        assert_eq!(p.predict_us(&X), p.predict_us(&x2));
    }

    #[test]
    fn covers_the_empirical_maximum() {
        let samples = varied_samples(10_000, 2);
        let emp_max = samples.iter().map(|s| s.runtime_us).fold(0.0, f64::max);
        let p = PwcetEvt::fit(&samples, 0.99999, 50);
        assert!(p.wcet_us() >= emp_max);
    }

    #[test]
    fn pessimistic_for_small_inputs() {
        // The Fig. 13 effect: a 1-codeblock task runs ~40 µs but the
        // single-value pWCET sits above the 15-codeblock worst case.
        let p = PwcetEvt::fit(&varied_samples(20_000, 3), 0.99999, 50);
        assert!(
            p.wcet_us() > 450.0,
            "pWCET {} must be sized for the worst input",
            p.wcet_us()
        );
    }

    #[test]
    fn online_refit_adapts_upward() {
        let mut p = PwcetEvt::fit(&varied_samples(10_000, 4), 0.99999, 50);
        let before = p.wcet_us();
        let mut rng = Rng::new(5);
        for _ in 0..12_000 {
            let cbs = rng.range_u64(1, 16) as f64;
            p.observe(&X, (10.0 + 30.0 * cbs) * 1.4 * rng.lognormal(0.0, 0.05));
        }
        assert!(
            p.wcet_us() > before * 1.1,
            "before {before} after {}",
            p.wcet_us()
        );
    }

    #[test]
    fn degenerate_constant_samples_fall_back_to_max() {
        let samples: Vec<TrainingSample> = (0..100)
            .map(|_| TrainingSample {
                x: X,
                runtime_us: 42.0,
            })
            .collect();
        let p = PwcetEvt::fit(&samples, 0.99999, 10);
        assert_eq!(p.wcet_us(), 42.0);
    }
}
