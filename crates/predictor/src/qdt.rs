//! The quantile decision tree — the paper's WCET predictor (§4.2,
//! Algorithms 1 & 2).
//!
//! Offline, a CART tree is fitted to profiling samples so that leaves have
//! minimal runtime variance; each leaf holds a ring buffer (5 000 entries
//! in the reference implementation) seeded with the offline samples.
//! Online, observed runtimes replace the buffer contents *without changing
//! the tree structure* — the Fig. 7 observation that the offline grouping
//! stays valid under interference, only the within-leaf distribution
//! shifts. Prediction is the maximum over the leaf's buffer.

use crate::api::{TrainingSample, WcetPredictor};
use crate::tree::{Tree, TreeConfig};
use concordia_ran::features::FeatureVec;
use concordia_stats::ring::MaxRingBuffer;

/// Leaf ring-buffer capacity (§5: "ring buffers of the leaf nodes having
/// 5K entries").
pub const LEAF_BUFFER_CAPACITY: usize = 5_000;

/// Which statistic of the leaf buffer becomes the WCET prediction.
/// The paper uses the maximum; the quantile variant exists for the
/// leaf-statistic ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LeafStatistic {
    /// `max(B_i)` — Algorithm 2.
    Max,
    /// An upper quantile of `B_i` (e.g. 0.999).
    Quantile(f64),
}

/// Quantile-decision-tree WCET predictor for one task kind.
pub struct QuantileDecisionTree {
    tree: Tree,
    leaves: Vec<MaxRingBuffer>,
    stat: LeafStatistic,
    /// Safety margin applied multiplicatively to the leaf statistic.
    margin: f64,
    /// Fallback prediction for leaves that lost all their samples (never
    /// happens in practice — buffers are seeded offline — but the predictor
    /// must stay total).
    fallback_us: f64,
}

impl QuantileDecisionTree {
    /// Fits the tree offline on profiling samples restricted to the feature
    /// subset `feats` (the output of Algorithm 1), then seeds every leaf
    /// buffer with its training samples.
    pub fn fit(samples: &[TrainingSample], feats: &[usize], cfg: &TreeConfig) -> Self {
        Self::fit_with(samples, feats, cfg, LeafStatistic::Max, 1.0)
    }

    /// [`QuantileDecisionTree::fit`] with an explicit leaf statistic and
    /// multiplicative margin (for ablations).
    pub fn fit_with(
        samples: &[TrainingSample],
        feats: &[usize],
        cfg: &TreeConfig,
        stat: LeafStatistic,
        margin: f64,
    ) -> Self {
        assert!(!samples.is_empty(), "offline phase needs samples");
        let xs: Vec<FeatureVec> = samples.iter().map(|s| s.x).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.runtime_us).collect();
        let (tree, leaf_samples) = Tree::fit(&xs, &ys, feats, cfg);
        let global_max = ys.iter().cloned().fold(0.0, f64::max);
        let leaves = leaf_samples
            .iter()
            .map(|idxs| {
                let mut rb = MaxRingBuffer::new(LEAF_BUFFER_CAPACITY);
                for &i in idxs {
                    rb.push(ys[i]);
                }
                rb
            })
            .collect();
        QuantileDecisionTree {
            tree,
            leaves,
            stat,
            margin,
            fallback_us: global_max,
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Leaf id a feature vector routes to (exposed for the Fig. 7
    /// leaf-distribution analysis).
    pub fn leaf_of(&self, x: &FeatureVec) -> usize {
        self.tree.leaf_of(x)
    }

    /// Read-only view of a leaf's current samples.
    pub fn leaf_samples(&self, leaf: usize) -> &[f64] {
        self.leaves[leaf].samples()
    }

    /// Clears every leaf buffer (used by the online-adaptation ablation to
    /// model a freshly deployed tree with no history).
    pub fn clear_buffers(&mut self) {
        for l in &mut self.leaves {
            l.clear();
        }
    }

    fn leaf_stat(&self, leaf: usize) -> f64 {
        let rb = &self.leaves[leaf];
        let v = match self.stat {
            LeafStatistic::Max => rb.max(),
            LeafStatistic::Quantile(q) => rb.quantile(q),
        };
        v.unwrap_or(self.fallback_us)
    }

    /// Upper quantile of a leaf's current samples (the fallback value for
    /// a drained leaf). Snapshotted at training time by the predictor
    /// control plane as the per-leaf drift reference.
    pub fn leaf_quantile(&self, leaf: usize, q: f64) -> f64 {
        self.leaves[leaf].quantile(q).unwrap_or(self.fallback_us)
    }

    /// Rebuilds every leaf buffer from `samples`, routing each through the
    /// *frozen* tree — the online-retraining step of the control plane:
    /// structure from the offline fit, statistics from the replay buffer.
    /// Leaves the replay never visited keep nothing and answer with the
    /// (raised) fallback, so the re-fitted tree stays total and
    /// conservative where it has no fresh evidence. Returns the number of
    /// leaves that received at least one sample.
    pub fn refit_leaves(&mut self, samples: &[TrainingSample]) -> usize {
        for l in &mut self.leaves {
            l.clear();
        }
        let mut max = 0.0f64;
        for s in samples {
            let leaf = self.tree.leaf_of(&s.x);
            self.leaves[leaf].push(s.runtime_us);
            max = max.max(s.runtime_us);
        }
        // The fallback only ever ratchets up: an empty leaf must cover the
        // worst runtime seen in either regime.
        self.fallback_us = self.fallback_us.max(max);
        self.leaves.iter().filter(|l| !l.is_empty()).count()
    }
}

impl WcetPredictor for QuantileDecisionTree {
    fn predict_us(&self, x: &FeatureVec) -> f64 {
        self.leaf_stat(self.tree.leaf_of(x)) * self.margin
    }

    fn observe(&mut self, x: &FeatureVec, runtime_us: f64) {
        let leaf = self.tree.leaf_of(x);
        self.leaves[leaf].push(runtime_us);
    }

    fn name(&self) -> &'static str {
        "quantile_dt"
    }

    fn route(&self, x: &FeatureVec) -> Option<usize> {
        Some(self.tree.leaf_of(x))
    }

    fn refit(&mut self, samples: &[TrainingSample]) -> bool {
        if samples.is_empty() {
            return false;
        }
        self.refit_leaves(samples);
        true
    }

    fn reference_quantiles(&self, q: f64) -> Vec<f64> {
        (0..self.leaves.len())
            .map(|l| self.leaf_quantile(l, q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concordia_ran::features::NUM_FEATURES;
    use concordia_stats::rng::Rng;

    fn fv(v0: f64, v1: f64) -> FeatureVec {
        let mut x = [0.0; NUM_FEATURES];
        x[0] = v0;
        x[1] = v1;
        x
    }

    /// Synthetic decode-like workload: runtime = 30*x0 + noise, where x0
    /// plays the codeblock-count role.
    fn synthetic(n: usize, seed: u64) -> Vec<TrainingSample> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let cbs = rng.range_u64(1, 16) as f64;
                let noise = rng.lognormal(0.0, 0.05);
                TrainingSample {
                    x: fv(cbs, rng.f64()),
                    runtime_us: (10.0 + 30.0 * cbs) * noise,
                }
            })
            .collect()
    }

    #[test]
    fn parameterized_prediction_tracks_input_size() {
        let samples = synthetic(20_000, 1);
        let qdt = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let small = qdt.predict_us(&fv(2.0, 0.5));
        let large = qdt.predict_us(&fv(14.0, 0.5));
        assert!(
            large > 3.0 * small,
            "prediction must grow with input size: {small} vs {large}"
        );
    }

    #[test]
    fn split_boundary_value_routes_with_the_left_leaf() {
        // Two clean clusters at x0 = 2 and x0 = 8: the fitter cuts between
        // the adjacent distinct values, so the threshold is their midpoint,
        // x0 <= 5 — and the tree's convention is that the boundary value
        // itself goes LEFT. A feature vector exactly on the threshold must
        // therefore predict the small cluster, and anything above it (by
        // however little) the large one.
        let samples: Vec<TrainingSample> = (0..200)
            .map(|i| {
                let (x0, y) = if i % 2 == 0 { (2.0, 10.0) } else { (8.0, 50.0) };
                TrainingSample {
                    x: fv(x0, 0.0),
                    runtime_us: y,
                }
            })
            .collect();
        let qdt = QuantileDecisionTree::fit(&samples, &[0], &TreeConfig::default());
        assert_eq!(qdt.n_leaves(), 2, "one split separates pure clusters");
        assert_eq!(
            qdt.leaf_of(&fv(5.0, 0.0)),
            qdt.leaf_of(&fv(2.0, 0.0)),
            "the boundary value belongs to the left leaf"
        );
        assert_eq!(
            qdt.leaf_of(&fv(5.0 + 1e-9, 0.0)),
            qdt.leaf_of(&fv(8.0, 0.0)),
            "just past the threshold routes right"
        );
        assert_eq!(qdt.predict_us(&fv(5.0, 0.0)), 10.0);
        assert_eq!(qdt.predict_us(&fv(5.0 + 1e-9, 0.0)), 50.0);
    }

    #[test]
    fn predictions_upper_bound_most_runtimes() {
        // The max-of-leaf statistic should cover essentially all in-leaf
        // samples (that is the design goal of Algorithm 2).
        let samples = synthetic(20_000, 2);
        let qdt = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let mut rng = Rng::new(3);
        let mut misses = 0;
        let n = 20_000;
        for _ in 0..n {
            let cbs = rng.range_u64(1, 16) as f64;
            let actual = (10.0 + 30.0 * cbs) * rng.lognormal(0.0, 0.05);
            if actual > qdt.predict_us(&fv(cbs, rng.f64())) {
                misses += 1;
            }
        }
        let miss_rate = misses as f64 / n as f64;
        assert!(miss_rate < 0.01, "miss rate {miss_rate}");
    }

    #[test]
    fn less_pessimistic_than_single_value_wcet() {
        // Fig. 13: the parameterized prediction is far tighter than one
        // global WCET for small inputs.
        let samples = synthetic(20_000, 4);
        let global_max = samples.iter().map(|s| s.runtime_us).fold(0.0, f64::max);
        let qdt = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let small_pred = qdt.predict_us(&fv(2.0, 0.5));
        assert!(
            small_pred < global_max / 3.0,
            "parameterized {small_pred} vs global {global_max}"
        );
    }

    #[test]
    fn online_observation_adapts_to_interference() {
        // Shift the runtime distribution up 30% (cache interference) and
        // verify that after online updates predictions cover the new regime
        // without refitting the tree.
        let samples = synthetic(20_000, 5);
        let mut qdt = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let before = qdt.predict_us(&fv(8.0, 0.5));
        let mut rng = Rng::new(6);
        for _ in 0..30_000 {
            let cbs = rng.range_u64(1, 16) as f64;
            let inflated = (10.0 + 30.0 * cbs) * rng.lognormal(0.0, 0.05) * 1.3;
            qdt.observe(&fv(cbs, rng.f64()), inflated);
        }
        let after = qdt.predict_us(&fv(8.0, 0.5));
        assert!(after > before * 1.1, "before {before} after {after}");
        // And new samples are covered.
        let mut misses = 0;
        for _ in 0..5_000 {
            let cbs = rng.range_u64(1, 16) as f64;
            let actual = (10.0 + 30.0 * cbs) * rng.lognormal(0.0, 0.05) * 1.3;
            if actual > qdt.predict_us(&fv(cbs, 0.5)) {
                misses += 1;
            }
        }
        assert!(misses < 50, "misses {misses}");
    }

    #[test]
    fn tree_structure_frozen_after_fit() {
        let samples = synthetic(5_000, 7);
        let mut qdt = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let leaves_before = qdt.n_leaves();
        let leaf_route_before = qdt.leaf_of(&fv(8.0, 0.5));
        for _ in 0..10_000 {
            qdt.observe(&fv(8.0, 0.5), 1e6); // extreme outliers
        }
        assert_eq!(qdt.n_leaves(), leaves_before);
        assert_eq!(qdt.leaf_of(&fv(8.0, 0.5)), leaf_route_before);
    }

    #[test]
    fn ring_buffer_forgets_old_regime() {
        // After a burst of inflated samples ages out, predictions relax
        // (the ring buffer keeps only the most recent capacity samples).
        let samples = synthetic(20_000, 8);
        let mut qdt = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let x = fv(8.0, 0.5);
        qdt.observe(&x, 5_000.0); // one pathological sample
        let spiked = qdt.predict_us(&x);
        assert!(spiked >= 5_000.0);
        // Push a full buffer of normal samples through the same leaf.
        for _ in 0..LEAF_BUFFER_CAPACITY + 1 {
            qdt.observe(&x, 250.0);
        }
        let relaxed = qdt.predict_us(&x);
        assert!(relaxed < 300.0, "relaxed {relaxed}");
    }

    #[test]
    fn refit_leaves_adopts_the_new_regime() {
        // Quarantine-and-retrain in miniature: re-fit the frozen tree from
        // a replay of 1.5x-inflated samples; predictions must cover the
        // new regime and routing must not change.
        let samples = synthetic(20_000, 20);
        let mut qdt = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let route_before = qdt.leaf_of(&fv(8.0, 0.5));
        let before = qdt.predict_us(&fv(8.0, 0.5));
        let mut rng = Rng::new(21);
        let replay: Vec<TrainingSample> = (0..8_000)
            .map(|_| {
                let cbs = rng.range_u64(1, 16) as f64;
                TrainingSample {
                    x: fv(cbs, rng.f64()),
                    runtime_us: (10.0 + 30.0 * cbs) * rng.lognormal(0.0, 0.05) * 1.5,
                }
            })
            .collect();
        let filled = qdt.refit_leaves(&replay);
        assert!(filled > 0);
        assert_eq!(qdt.leaf_of(&fv(8.0, 0.5)), route_before, "structure frozen");
        let after = qdt.predict_us(&fv(8.0, 0.5));
        assert!(after > before * 1.2, "before {before} after {after}");
        // Coverage on the new regime.
        let mut misses = 0;
        for _ in 0..5_000 {
            let cbs = rng.range_u64(1, 16) as f64;
            let actual = (10.0 + 30.0 * cbs) * rng.lognormal(0.0, 0.05) * 1.5;
            if actual > qdt.predict_us(&fv(cbs, rng.f64())) {
                misses += 1;
            }
        }
        // The replay (8 K samples) is smaller than the offline set, so the
        // per-leaf maxima cover a little less tail than a fresh fit.
        assert!(misses < 150, "misses {misses}");
    }

    #[test]
    fn refit_with_sparse_replay_stays_conservative() {
        // A replay that visits only one corner of the input space: the
        // drained leaves must answer with the ratcheted fallback (at least
        // the worst runtime ever seen), never zero.
        let samples = synthetic(10_000, 22);
        let global_max = samples.iter().map(|s| s.runtime_us).fold(0.0, f64::max);
        let mut qdt = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let replay = vec![TrainingSample {
            x: fv(2.0, 0.5),
            runtime_us: 70.0,
        }];
        qdt.refit_leaves(&replay);
        let large = qdt.predict_us(&fv(14.0, 0.5));
        assert!(large >= global_max, "large {large} vs max {global_max}");
    }

    #[test]
    fn lifecycle_trait_hooks_route_and_reference() {
        let samples = synthetic(10_000, 23);
        let mut qdt = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let x = fv(8.0, 0.5);
        assert_eq!(qdt.route(&x), Some(qdt.leaf_of(&x)));
        let refs = qdt.reference_quantiles(0.95);
        assert_eq!(refs.len(), qdt.n_leaves());
        let leaf = qdt.leaf_of(&x);
        // Reference is an upper quantile: above the mean, at most the max.
        let ys = qdt.leaf_samples(leaf);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let max = ys.iter().cloned().fold(0.0, f64::max);
        assert!(refs[leaf] >= mean && refs[leaf] <= max);
        assert!(!qdt.refit(&[]), "empty replay refuses to refit");
        assert!(qdt.refit(&samples[..100]));
    }

    #[test]
    fn quantile_statistic_is_less_conservative_than_max() {
        let samples = synthetic(20_000, 9);
        let qmax = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let q99 = QuantileDecisionTree::fit_with(
            &samples,
            &[0, 1],
            &TreeConfig::default(),
            LeafStatistic::Quantile(0.99),
            1.0,
        );
        let x = fv(8.0, 0.5);
        assert!(q99.predict_us(&x) <= qmax.predict_us(&x));
    }

    #[test]
    fn margin_scales_predictions() {
        let samples = synthetic(5_000, 10);
        let base = QuantileDecisionTree::fit(&samples, &[0], &TreeConfig::default());
        let margined = QuantileDecisionTree::fit_with(
            &samples,
            &[0],
            &TreeConfig::default(),
            LeafStatistic::Max,
            1.2,
        );
        let x = fv(8.0, 0.5);
        let ratio = margined.predict_us(&x) / base.predict_us(&x);
        assert!((ratio - 1.2).abs() < 1e-9);
    }

    #[test]
    fn low_variance_within_leaves() {
        // The Fig. 7a property: within-leaf variance is small relative to
        // the overall variance.
        let samples = synthetic(20_000, 11);
        let qdt = QuantileDecisionTree::fit(&samples, &[0, 1], &TreeConfig::default());
        let all: Vec<f64> = samples.iter().map(|s| s.runtime_us).collect();
        let gm = all.iter().sum::<f64>() / all.len() as f64;
        let gvar = all.iter().map(|y| (y - gm).powi(2)).sum::<f64>() / all.len() as f64;
        let mut within = 0.0;
        let mut n = 0usize;
        for leaf in 0..qdt.n_leaves() {
            let ys = qdt.leaf_samples(leaf);
            if ys.is_empty() {
                continue;
            }
            let m = ys.iter().sum::<f64>() / ys.len() as f64;
            within += ys.iter().map(|y| (y - m).powi(2)).sum::<f64>();
            n += ys.len();
        }
        let wvar = within / n as f64;
        assert!(
            wvar < gvar * 0.05,
            "within-leaf var {wvar} vs global {gvar}"
        );
    }
}
