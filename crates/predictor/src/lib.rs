//! # concordia-predictor
//!
//! WCET predictors for vRAN signal-processing tasks.
//!
//! * [`api`] — the [`WcetPredictor`] trait, the per-task [`ModelBank`],
//!   and trivial constant baselines.
//! * [`tree`] — shared CART variance-minimizing tree construction.
//! * [`qdt`] — the paper's contribution: quantile decision trees with
//!   ring-buffer leaves (§4.2, Algorithms 1–2).
//! * [`featsel`] — Algorithm 1 feature selection (distance correlation +
//!   backwards elimination + hand-picked union).
//! * [`linreg`] — linear-regression baseline (§6.4).
//! * [`gbt`] — gradient-boosting baseline (§6.4).
//! * [`evt`] — conventional single-value pWCET via Gumbel block maxima
//!   (§6.3, [23]).
//! * [`replay`] — bounded replay buffer feeding the online-retraining path
//!   of the predictor control plane.

pub mod api;
pub mod evt;
pub mod featsel;
pub mod gbt;
pub mod linreg;
pub mod qdt;
pub mod replay;
pub mod tree;

pub use api::{
    FixedPredictor, InflatedPredictor, MaxObservedPredictor, ModelBank, TrainingSample,
    WcetPredictor,
};
pub use evt::PwcetEvt;
pub use featsel::{select_features, FeatSelConfig};
pub use gbt::{GbtConfig, GradientBoosting};
pub use linreg::LinearRegression;
pub use qdt::{LeafStatistic, QuantileDecisionTree, LEAF_BUFFER_CAPACITY};
pub use replay::ReplayBuffer;
pub use tree::{Tree, TreeConfig};
