//! Linear-regression WCET baseline (§6.4, Fig. 14).
//!
//! Ordinary least squares on the selected features plus an intercept, with
//! a probabilistic upper bound: the prediction is the regression mean plus
//! the `0.99999` quantile of the training residuals. Like the quantile
//! decision tree, the baseline adapts online — a ring buffer of recent
//! residuals replaces the offline residual quantile (the paper: "we also
//! adapted the models to take into account the online runtime samples").
//!
//! The paper's finding, which this implementation reproduces: the linear
//! model misses far more deadlines than the tree models because task
//! runtimes are *not* linear in several inputs (§4.1).

use crate::api::{TrainingSample, WcetPredictor};
use concordia_ran::features::FeatureVec;
use concordia_stats::linalg::{least_squares, Matrix};
use concordia_stats::ring::MaxRingBuffer;
use concordia_stats::summary::normal_quantile;

/// Residual ring-buffer capacity for online adaptation.
const RESIDUAL_BUFFER: usize = 5_000;

/// Linear-regression WCET predictor with residual-quantile upper bounding.
pub struct LinearRegression {
    feats: Vec<usize>,
    /// `weights[0]` is the intercept; `weights[1..]` align with `feats`.
    weights: Vec<f64>,
    /// Confidence for the residual upper bound.
    confidence: f64,
    /// Recent residuals (actual − mean prediction), online-updated.
    residuals: MaxRingBuffer,
}

impl LinearRegression {
    /// Fits OLS on the samples restricted to `feats`, with the upper bound
    /// at the given confidence (the paper uses 0.99999).
    pub fn fit(samples: &[TrainingSample], feats: &[usize], confidence: f64) -> Self {
        assert!(!samples.is_empty());
        assert!((0.0..1.0).contains(&confidence) && confidence > 0.0);
        let n = samples.len();
        let p = feats.len() + 1;
        let mut data = Vec::with_capacity(n * p);
        let mut y = Vec::with_capacity(n);
        for s in samples {
            data.push(1.0);
            for &f in feats {
                data.push(s.x[f]);
            }
            y.push(s.runtime_us);
        }
        let x = Matrix::from_rows(n, p, &data);
        let weights = least_squares(&x, &y, 1e-6).expect("ridge-regularized OLS is solvable");

        let mut lr = LinearRegression {
            feats: feats.to_vec(),
            weights,
            confidence,
            residuals: MaxRingBuffer::new(RESIDUAL_BUFFER),
        };
        // Seed the residual buffer from the training set (most recent last).
        let start = samples.len().saturating_sub(RESIDUAL_BUFFER);
        for s in &samples[start..] {
            let r = s.runtime_us - lr.mean_us(&s.x);
            lr.residuals.push(r);
        }
        lr
    }

    /// The regression mean (no upper bounding).
    pub fn mean_us(&self, x: &FeatureVec) -> f64 {
        let mut v = self.weights[0];
        for (w, &f) in self.weights[1..].iter().zip(&self.feats) {
            v += w * x[f];
        }
        v
    }

    /// Gaussian prediction-interval bound: `mean + z(confidence) * sd` of
    /// the recent residuals — the standard "prediction interval" recipe the
    /// paper applies to its regression baselines (§6.4). A single global
    /// interval under-covers the large-input regime when the noise is
    /// multiplicative, which is exactly the Fig. 14 failure mode.
    fn residual_bound(&self) -> f64 {
        let xs = self.residuals.samples();
        if xs.len() < 2 {
            return 0.0;
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0);
        mean + normal_quantile(self.confidence) * var.sqrt()
    }
}

impl WcetPredictor for LinearRegression {
    fn predict_us(&self, x: &FeatureVec) -> f64 {
        (self.mean_us(x) + self.residual_bound()).max(0.0)
    }

    fn observe(&mut self, x: &FeatureVec, runtime_us: f64) {
        let r = runtime_us - self.mean_us(x);
        self.residuals.push(r);
    }

    fn name(&self) -> &'static str {
        "linear_regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concordia_ran::features::NUM_FEATURES;
    use concordia_stats::rng::Rng;

    fn fv(v0: f64) -> FeatureVec {
        let mut x = [0.0; NUM_FEATURES];
        x[0] = v0;
        x
    }

    fn linear_samples(n: usize, seed: u64) -> Vec<TrainingSample> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let v = rng.f64() * 15.0;
                TrainingSample {
                    x: fv(v),
                    runtime_us: 10.0 + 30.0 * v + rng.normal() * 2.0,
                }
            })
            .collect()
    }

    #[test]
    fn recovers_linear_relationship() {
        let samples = linear_samples(5_000, 1);
        let lr = LinearRegression::fit(&samples, &[0], 0.999);
        assert!((lr.mean_us(&fv(0.0)) - 10.0).abs() < 1.0);
        assert!((lr.mean_us(&fv(10.0)) - 310.0).abs() < 3.0);
    }

    #[test]
    fn upper_bound_covers_linear_data() {
        let samples = linear_samples(20_000, 2);
        let lr = LinearRegression::fit(&samples, &[0], 0.9999);
        let mut rng = Rng::new(3);
        let mut misses = 0;
        for _ in 0..10_000 {
            let v = rng.f64() * 15.0;
            let actual = 10.0 + 30.0 * v + rng.normal() * 2.0;
            if actual > lr.predict_us(&fv(v)) {
                misses += 1;
            }
        }
        assert!(misses < 30, "misses {misses}");
    }

    #[test]
    fn fails_on_nonlinear_data() {
        // Quadratic runtime: the linear fit underestimates the extremes —
        // the §4.1/Fig. 14 story for why Concordia uses a tree.
        let mut rng = Rng::new(4);
        let samples: Vec<TrainingSample> = (0..20_000)
            .map(|_| {
                let v = rng.f64() * 10.0;
                TrainingSample {
                    x: fv(v),
                    runtime_us: 5.0 * v * v + rng.normal().abs(),
                }
            })
            .collect();
        let lr = LinearRegression::fit(&samples, &[0], 0.999);
        // At the top of the range the true runtime is 500; the linear mean
        // underestimates badly and even the residual bound stays tight to
        // the *typical* error, so relative error at the extreme is large.
        let pred = lr.predict_us(&fv(10.0));
        let err = (500.0 - lr.mean_us(&fv(10.0))).abs();
        assert!(err > 50.0, "linear mean should be biased, err {err}");
        // The bound still covers it only by being pessimistic elsewhere.
        let pred_small = lr.predict_us(&fv(0.5));
        assert!(
            pred_small > 5.0 * 0.25 * 10.0,
            "small-input prediction {pred_small} must be very pessimistic"
        );
        let _ = pred;
    }

    #[test]
    fn online_observation_widens_bound_under_interference() {
        let samples = linear_samples(10_000, 5);
        let mut lr = LinearRegression::fit(&samples, &[0], 0.999);
        let before = lr.predict_us(&fv(5.0));
        let mut rng = Rng::new(6);
        for _ in 0..8_000 {
            let v = rng.f64() * 15.0;
            let inflated = (10.0 + 30.0 * v) * 1.4 + rng.normal() * 2.0;
            lr.observe(&fv(v), inflated);
        }
        let after = lr.predict_us(&fv(5.0));
        assert!(after > before + 20.0, "before {before} after {after}");
    }

    #[test]
    fn collinear_features_do_not_crash() {
        // Feature 16 = bits * layers can be collinear with bits when layers
        // is constant; ridge regularization must keep the fit solvable.
        let mut rng = Rng::new(7);
        let samples: Vec<TrainingSample> = (0..2_000)
            .map(|_| {
                let v = rng.f64() * 10.0;
                let mut x = [0.0; NUM_FEATURES];
                x[0] = v;
                x[1] = v; // exact copy
                TrainingSample {
                    x,
                    runtime_us: 3.0 * v + 1.0,
                }
            })
            .collect();
        let lr = LinearRegression::fit(&samples, &[0, 1], 0.99);
        let pred = lr.mean_us(&{
            let mut x = [0.0; NUM_FEATURES];
            x[0] = 4.0;
            x[1] = 4.0;
            x
        });
        assert!((pred - 13.0).abs() < 0.5, "pred {pred}");
    }
}
