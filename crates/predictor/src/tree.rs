//! CART regression-tree construction.
//!
//! §4.2: the quantile decision tree "uses the CART algorithm to minimize
//! the variance among the samples that end up in the same leaf". This
//! module is the shared split machinery: the quantile decision tree
//! ([`crate::qdt`]) puts ring buffers in the leaves, and the
//! gradient-boosting baseline ([`crate::gbt`]) puts mean values there.
//!
//! Trees are stored flattened in a `Vec` for cache-friendly traversal — the
//! predictor runs every TTI and must be fast (§5 / Fig. 15a).

use concordia_ran::features::FeatureVec;
use serde::{Deserialize, Serialize};

/// Tree-construction hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: u32,
    /// Minimum samples per leaf; splits creating smaller leaves are
    /// rejected.
    pub min_leaf: usize,
    /// Number of candidate thresholds examined per feature (quantile grid).
    pub n_thresholds: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_leaf: 50,
            n_thresholds: 16,
        }
    }
}

/// A flattened tree node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Internal split: `x[feature] <= threshold` goes left.
    Split {
        /// Feature index into the [`FeatureVec`].
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Index of the left child in the node array.
        left: u32,
        /// Index of the right child in the node array.
        right: u32,
    },
    /// Terminal node holding a dense leaf id.
    Leaf {
        /// Dense leaf index in `[0, n_leaves)`.
        leaf_id: u32,
    },
}

/// A fitted regression-tree structure (no leaf payloads — those belong to
/// the caller, keyed by leaf id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    n_leaves: usize,
    features_used: Vec<usize>,
}

impl Tree {
    /// Fits a variance-minimizing tree on `(xs, ys)` restricted to the
    /// feature subset `feats`. Returns the tree and, per leaf id, the
    /// indices of the training samples that landed in it.
    ///
    /// Panics on empty input or mismatched lengths.
    pub fn fit(
        xs: &[FeatureVec],
        ys: &[f64],
        feats: &[usize],
        cfg: &TreeConfig,
    ) -> (Tree, Vec<Vec<usize>>) {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit a tree on no samples");
        assert!(!feats.is_empty(), "need at least one feature");

        let mut nodes: Vec<Node> = Vec::new();
        let mut leaf_samples: Vec<Vec<usize>> = Vec::new();
        let all: Vec<usize> = (0..xs.len()).collect();
        // Stack of (node index to fill, samples, depth).
        nodes.push(Node::Leaf { leaf_id: 0 }); // placeholder for root
        let mut stack = vec![(0usize, all, 0u32)];

        while let Some((slot, samples, depth)) = stack.pop() {
            let split = if depth < cfg.max_depth && samples.len() >= 2 * cfg.min_leaf {
                best_split(xs, ys, &samples, feats, cfg)
            } else {
                None
            };
            match split {
                Some((feature, threshold)) => {
                    let (l, r): (Vec<usize>, Vec<usize>) =
                        samples.iter().partition(|&&i| xs[i][feature] <= threshold);
                    debug_assert!(l.len() >= cfg.min_leaf && r.len() >= cfg.min_leaf);
                    let left = nodes.len() as u32;
                    let right = left + 1;
                    nodes.push(Node::Leaf { leaf_id: 0 }); // placeholders
                    nodes.push(Node::Leaf { leaf_id: 0 });
                    nodes[slot] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    stack.push((left as usize, l, depth + 1));
                    stack.push((right as usize, r, depth + 1));
                }
                None => {
                    let leaf_id = leaf_samples.len() as u32;
                    nodes[slot] = Node::Leaf { leaf_id };
                    leaf_samples.push(samples);
                }
            }
        }

        (
            Tree {
                nodes,
                n_leaves: leaf_samples.len(),
                features_used: feats.to_vec(),
            },
            leaf_samples,
        )
    }

    /// Leaf id for a feature vector. O(depth).
    #[inline]
    pub fn leaf_of(&self, x: &FeatureVec) -> usize {
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[feature] <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
                Node::Leaf { leaf_id } => return leaf_id as usize,
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Features the tree was fitted on.
    pub fn features_used(&self) -> &[usize] {
        &self.features_used
    }
}

/// Finds the variance-minimizing split over the candidate thresholds;
/// returns `None` when no split reduces the sum of squared errors or
/// satisfies the minimum-leaf constraint.
fn best_split(
    xs: &[FeatureVec],
    ys: &[f64],
    samples: &[usize],
    feats: &[usize],
    cfg: &TreeConfig,
) -> Option<(usize, f64)> {
    let n = samples.len();
    let sum: f64 = samples.iter().map(|&i| ys[i]).sum();
    let sum_sq: f64 = samples.iter().map(|&i| ys[i] * ys[i]).sum();
    let parent_sse = sum_sq - sum * sum / n as f64;
    if parent_sse <= 1e-12 {
        return None; // already pure
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feat, thr, sse)
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
    for &f in feats {
        pairs.clear();
        pairs.extend(samples.iter().map(|&i| (xs[i][f], ys[i])));
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature"));
        if pairs[0].0 == pairs[n - 1].0 {
            continue; // constant feature in this node
        }
        // Prefix sums for O(1) SSE at each cut position.
        let mut pre_s = vec![0.0f64; n + 1];
        let mut pre_q = vec![0.0f64; n + 1];
        for (k, &(_, y)) in pairs.iter().enumerate() {
            pre_s[k + 1] = pre_s[k] + y;
            pre_q[k + 1] = pre_q[k] + y * y;
        }
        // Candidate cut positions: an evenly spaced grid, snapped forward so
        // the threshold falls between distinct feature values.
        let step = (n / (cfg.n_thresholds + 1)).max(1);
        let mut k = step;
        while k < n {
            // Snap to the last index sharing pairs[k-1].0.
            let v = pairs[k - 1].0;
            while k < n && pairs[k].0 == v {
                k += 1;
            }
            if k >= n {
                break;
            }
            let (nl, nr) = (k, n - k);
            if nl >= cfg.min_leaf && nr >= cfg.min_leaf {
                let sl = pre_s[k];
                let ql = pre_q[k];
                let sse_l = ql - sl * sl / nl as f64;
                let sr = sum - sl;
                let qr = sum_sq - ql;
                let sse_r = qr - sr * sr / nr as f64;
                let sse = sse_l + sse_r;
                if best.is_none_or(|(_, _, b)| sse < b) {
                    let thr = (v + pairs[k].0) / 2.0;
                    best = Some((f, thr, sse));
                }
            }
            k += step;
        }
    }

    best.and_then(|(f, thr, sse)| {
        if sse < parent_sse - 1e-9 {
            Some((f, thr))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use concordia_ran::features::NUM_FEATURES;
    use concordia_stats::rng::Rng;

    fn fv(vals: &[(usize, f64)]) -> FeatureVec {
        let mut x = [0.0; NUM_FEATURES];
        for &(i, v) in vals {
            x[i] = v;
        }
        x
    }

    #[test]
    fn splits_a_step_function_perfectly() {
        // y = 10 for x0 < 5, y = 50 for x0 >= 5 — one split suffices.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let v = i as f64 / 20.0; // 0..10
            xs.push(fv(&[(0, v)]));
            ys.push(if v < 5.0 { 10.0 } else { 50.0 });
        }
        // 19 thresholds over 200 samples puts a candidate cut exactly at
        // the class boundary (position 100).
        let cfg = TreeConfig {
            max_depth: 4,
            min_leaf: 10,
            n_thresholds: 19,
        };
        let (tree, leaves) = Tree::fit(&xs, &ys, &[0], &cfg);
        assert!(tree.n_leaves() >= 2);
        // Every leaf must be pure.
        for leaf in &leaves {
            let vals: Vec<f64> = leaf.iter().map(|&i| ys[i]).collect();
            let first = vals[0];
            assert!(vals.iter().all(|&v| v == first), "impure leaf {vals:?}");
        }
        // Routing agrees with training assignment.
        assert_ne!(
            tree.leaf_of(&fv(&[(0, 1.0)])),
            tree.leaf_of(&fv(&[(0, 9.0)]))
        );
    }

    #[test]
    fn respects_min_leaf() {
        let mut rng = Rng::new(1);
        let xs: Vec<FeatureVec> = (0..300).map(|_| fv(&[(0, rng.f64())])).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 100.0).collect();
        let cfg = TreeConfig {
            max_depth: 10,
            min_leaf: 40,
            n_thresholds: 16,
        };
        let (_, leaves) = Tree::fit(&xs, &ys, &[0], &cfg);
        for leaf in &leaves {
            assert!(leaf.len() >= 40, "leaf of size {}", leaf.len());
        }
    }

    #[test]
    fn respects_max_depth() {
        let mut rng = Rng::new(2);
        let xs: Vec<FeatureVec> = (0..4000).map(|_| fv(&[(0, rng.f64())])).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 100.0).collect();
        let cfg = TreeConfig {
            max_depth: 3,
            min_leaf: 2,
            n_thresholds: 16,
        };
        let (tree, _) = Tree::fit(&xs, &ys, &[0], &cfg);
        assert!(
            tree.n_leaves() <= 8,
            "2^3 leaves max, got {}",
            tree.n_leaves()
        );
    }

    #[test]
    fn picks_the_informative_feature() {
        // y depends on feature 3 only; features 0-2 are noise.
        let mut rng = Rng::new(3);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..500 {
            let x = fv(&[
                (0, rng.f64()),
                (1, rng.f64()),
                (2, rng.f64()),
                (3, rng.f64() * 10.0),
            ]);
            ys.push(if x[3] > 5.0 { 100.0 } else { 0.0 });
            xs.push(x);
        }
        let (tree, _) = Tree::fit(&xs, &ys, &[0, 1, 2, 3], &TreeConfig::default());
        // The root split must use feature 3.
        match tree.nodes[0] {
            Node::Split { feature, .. } => assert_eq!(feature, 3),
            Node::Leaf { .. } => panic!("expected a split at the root"),
        }
    }

    #[test]
    fn leaf_partition_covers_all_samples_once() {
        let mut rng = Rng::new(4);
        let xs: Vec<FeatureVec> = (0..800)
            .map(|_| fv(&[(0, rng.f64()), (1, rng.f64())]))
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 10.0 + x[1]).collect();
        let (tree, leaves) = Tree::fit(&xs, &ys, &[0, 1], &TreeConfig::default());
        let total: usize = leaves.iter().map(|l| l.len()).sum();
        assert_eq!(total, xs.len());
        // leaf_of must agree with the training partition.
        for (leaf_id, samples) in leaves.iter().enumerate() {
            for &i in samples {
                assert_eq!(tree.leaf_of(&xs[i]), leaf_id);
            }
        }
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let xs: Vec<FeatureVec> = (0..100).map(|i| fv(&[(0, i as f64)])).collect();
        let ys = vec![7.0; 100];
        let (tree, leaves) = Tree::fit(&xs, &ys, &[0], &TreeConfig::default());
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(leaves[0].len(), 100);
    }

    #[test]
    fn variance_reduction_monotone_with_depth() {
        // Deeper trees must not have higher within-leaf SSE.
        let mut rng = Rng::new(5);
        let xs: Vec<FeatureVec> = (0..2000).map(|_| fv(&[(0, rng.f64() * 10.0)])).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].powi(2) + rng.normal()).collect();
        let sse_at = |depth: u32| {
            let cfg = TreeConfig {
                max_depth: depth,
                min_leaf: 20,
                n_thresholds: 16,
            };
            let (_, leaves) = Tree::fit(&xs, &ys, &[0], &cfg);
            leaves
                .iter()
                .map(|l| {
                    let m = l.iter().map(|&i| ys[i]).sum::<f64>() / l.len() as f64;
                    l.iter().map(|&i| (ys[i] - m).powi(2)).sum::<f64>()
                })
                .sum::<f64>()
        };
        let s1 = sse_at(1);
        let s3 = sse_at(3);
        let s6 = sse_at(6);
        assert!(s1 >= s3 && s3 >= s6, "{s1} {s3} {s6}");
        assert!(s6 < s1 * 0.2, "depth 6 should explain most variance");
    }
}
