//! Bounded replay buffer of recent `(features, runtime)` observations.
//!
//! The predictor control plane re-fits a quarantined model from *recent*
//! online samples rather than the stale offline profiling set. The buffer
//! is a plain overwrite ring: once full, each push evicts the oldest
//! sample, so its contents are always the most recent `capacity`
//! observations in arrival order — deterministic, allocation-stable, and
//! cheap enough to run per task completion.

use crate::api::TrainingSample;

/// Fixed-capacity ring of recent training samples.
pub struct ReplayBuffer {
    buf: Vec<TrainingSample>,
    capacity: usize,
    /// Next write position once the ring is full.
    head: usize,
    /// Samples pushed since the last [`ReplayBuffer::clear`].
    pushed: u64,
}

impl ReplayBuffer {
    /// An empty buffer holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer needs capacity");
        ReplayBuffer {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples pushed since the last clear (may exceed `len` once the ring
    /// wraps) — the control plane's "fresh data since quarantine" counter.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Records one observation, evicting the oldest when full.
    pub fn push(&mut self, sample: TrainingSample) {
        if self.buf.len() < self.capacity {
            self.buf.push(sample);
        } else {
            self.buf[self.head] = sample;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Drops every sample and resets the freshness counter (called on
    /// quarantine so retraining sees only post-fault data).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.pushed = 0;
    }

    /// The retained samples in chronological order (oldest first). Leaf
    /// ring buffers keep the most recent entries, so re-fitting in this
    /// order reproduces "what the leaf would have seen".
    pub fn chronological(&self) -> Vec<TrainingSample> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concordia_ran::features::NUM_FEATURES;

    fn s(v: f64) -> TrainingSample {
        TrainingSample {
            x: [0.0; NUM_FEATURES],
            runtime_us: v,
        }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut rb = ReplayBuffer::new(3);
        assert!(rb.is_empty());
        for v in 1..=5 {
            rb.push(s(v as f64));
        }
        assert_eq!(rb.len(), 3);
        assert_eq!(rb.pushed(), 5);
        let chron: Vec<f64> = rb.chronological().iter().map(|s| s.runtime_us).collect();
        assert_eq!(chron, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn chronological_before_wrap() {
        let mut rb = ReplayBuffer::new(4);
        rb.push(s(1.0));
        rb.push(s(2.0));
        let chron: Vec<f64> = rb.chronological().iter().map(|s| s.runtime_us).collect();
        assert_eq!(chron, vec![1.0, 2.0]);
    }

    #[test]
    fn clear_resets_freshness() {
        let mut rb = ReplayBuffer::new(2);
        rb.push(s(1.0));
        rb.push(s(2.0));
        rb.push(s(3.0));
        assert_eq!(rb.pushed(), 3);
        rb.clear();
        assert!(rb.is_empty());
        assert_eq!(rb.pushed(), 0);
        rb.push(s(9.0));
        assert_eq!(rb.len(), 1);
        assert_eq!(rb.chronological()[0].runtime_us, 9.0);
    }
}
