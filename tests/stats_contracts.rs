//! Cross-crate statistical contracts: the numerical toolkit agrees with
//! itself and with the simulators that consume it.

use concordia::ran::Nanos;
use concordia::stats::hist::Log2Histogram;
use concordia::stats::rng::Rng;
use concordia::stats::summary::{normal_quantile, Ecdf};
use concordia::stats::{ks_two_sample, GumbelFit};
use concordia::traffic::burst::BurstModel;

#[test]
fn normal_quantile_agrees_with_sampled_normals() {
    // The z-values used by the regression predictors must match the
    // empirical quantiles of the RNG's own normal sampler.
    let mut rng = Rng::new(1);
    let xs: Vec<f64> = (0..400_000).map(|_| rng.normal()).collect();
    let ecdf = Ecdf::new(&xs);
    for p in [0.9, 0.99, 0.999] {
        let analytic = normal_quantile(p);
        let empirical = ecdf.quantile(p).unwrap();
        assert!(
            (analytic - empirical).abs() < 0.05,
            "p={p}: analytic {analytic} vs empirical {empirical}"
        );
    }
}

#[test]
fn gumbel_fit_bounds_traffic_burst_maxima() {
    // EVT on the traffic generator's own output: a 5-nines Gumbel bound on
    // block maxima must cover essentially all per-TTI sizes.
    let mut trio = BurstModel::lte_trio(7);
    let sizes: Vec<f64> = (0..200_000)
        .map(|_| trio.iter_mut().map(|m| m.next_tti()).sum::<f64>())
        .collect();
    let fit = GumbelFit::from_block_maxima(&sizes, 100).expect("fit");
    let bound = fit.quantile(0.99999);
    let exceed = sizes.iter().filter(|&&x| x > bound).count();
    assert!(
        exceed <= 2,
        "bound {bound} exceeded {exceed} times out of {}",
        sizes.len()
    );
}

#[test]
fn ks_separates_traffic_loads_but_not_seeds() {
    // Two seeds of the same traffic process: same distribution (KS must not
    // reject). A cell with a different duty cycle: rejected.
    let collect = |seed: u64, busy: bool, n: usize| -> Vec<f64> {
        let params = if busy {
            concordia::traffic::BurstParams::lte_busy()
        } else {
            concordia::traffic::BurstParams::lte_quiet()
        };
        let mut m = BurstModel::new(params, Rng::new(seed));
        (0..n).map(|_| m.next_tti()).collect()
    };
    let a = collect(1, false, 30_000);
    let b = collect(2, false, 30_000);
    let c = collect(3, true, 30_000);
    assert!(
        ks_two_sample(&a, &b).p_value > 0.001,
        "same process, different seeds must look alike"
    );
    assert!(
        ks_two_sample(&a, &c).p_value < 1e-6,
        "different duty cycles must be distinguishable"
    );
}

#[test]
fn log2_histogram_matches_oslat_tail_accounting() {
    // The Fig. 10 readout (count of wakes >= 64 us) computed through the
    // histogram must equal a direct count.
    let model = concordia::platform::OsLatencyModel::default();
    let mut rng = Rng::new(9);
    let mut hist = Log2Histogram::new();
    let mut direct = 0u64;
    for _ in 0..200_000 {
        let us = model.sample_wake(1.5, &mut rng).as_micros_f64();
        hist.record(us as u64);
        // The histogram buckets by the integer microsecond value; >= 64
        // in bucket space means the truncated value's bucket lower bound
        // is >= 64.
        if Log2Histogram::bucket_range(Log2Histogram::bucket_of(us as u64)).0 >= 64 {
            direct += 1;
        }
    }
    assert_eq!(hist.count_at_or_above(64), direct);
    assert_eq!(hist.total(), 200_000);
}

#[test]
fn nanos_display_round_trips_magnitudes() {
    for (n, needle) in [
        (Nanos(999), "ns"),
        (Nanos::from_micros(20), "us"),
        (Nanos::from_millis(3), "ms"),
        (Nanos::from_secs(2), "s"),
    ] {
        let s = format!("{n}");
        assert!(s.contains(needle), "{s} should carry unit {needle}");
    }
}

#[test]
fn mix_schedule_pressures_are_bounded_by_component_sums() {
    let mut rng = Rng::new(11);
    let mix = concordia::platform::MixSchedule::generate(Nanos::from_secs(120), &mut rng);
    let (max_cache, max_kernel) = concordia::platform::WorkloadKind::ALL
        .iter()
        .map(|k| {
            let p = k.profile();
            (p.cache_intensity, p.kernel_intensity)
        })
        .fold((0.0, 0.0), |(a, b), (c, k)| (a + c, b + k));
    for s in 0..120 {
        let (c, k) = mix.pressure_at(Nanos::from_secs(s));
        assert!(c >= 0.0 && c <= max_cache + 1e-9);
        assert!(k >= 0.0 && k <= max_kernel + 1e-9);
    }
}
