//! Scenario-library invariants through the facade:
//!
//! * conservation — every library scenario, layered under core-loss
//!   chaos on any pool size, never strands a cell's work;
//! * determinism — a scenario run is a pure function of (config, seed),
//!   pinned via the report fingerprint;
//! * format — specs round-trip through their JSON form byte-for-byte,
//!   and out-of-range knobs are rejected with typed errors at the parse
//!   boundary, never fed to the simulator.

use concordia::core::{run_experiment, ScenarioError, ScenarioKind, ScenarioSpec, SimConfig};
use concordia::platform::faults::{FaultKind, FaultPlan};
use concordia::ran::Nanos;
use proptest::prelude::*;

/// A run small enough for tier-1 debug builds: the scenario envelopes
/// below compress their ramps/periods to land inside 100 ms.
fn small(cells: u32, seed: u64, load: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_20mhz();
    cfg.n_cells = cells;
    cfg.cores = (cells + 1).min(6);
    cfg.duration = Nanos::from_millis(100);
    cfg.profiling_slots = 80;
    cfg.load = load;
    cfg.seed = seed;
    cfg
}

/// One compressed representative per library scenario.
fn library_spec(idx: usize) -> ScenarioSpec {
    let s = match idx % 5 {
        0 => "urban_macro_burst:period=300",
        1 => "stadium_flash_crowd:onset=0.2,ramp=60,hold=100,decay=80",
        2 => "sliced_deadlines",
        3 => "mmtc_background:devices=200000,period=10000",
        _ => "trace_replay:ttis=128,trace_seed=5",
    };
    ScenarioSpec::parse(s).expect("library scenario parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Per-cell conservation survives every scenario envelope × chaos
    /// core loss: whatever the intensity shaping injects, the pool
    /// completes.
    #[test]
    fn scenarios_never_strand_work_under_core_loss(
        idx in 0usize..5,
        cells in 1u32..4,
        seed in 0u64..1_000,
        load in 0.3f64..0.7,
    ) {
        let mut cfg = small(cells, seed, load);
        cfg.scenario = Some(library_spec(idx));
        cfg.faults = FaultPlan::chaos(&[FaultKind::CoreOffline], cfg.duration);
        let r = run_experiment(cfg);
        prop_assert_eq!(r.metrics.per_cell.len(), cells as usize);
        prop_assert_eq!(r.scenario.as_deref(), Some(library_spec(idx).name()));
        for (c, ledger) in r.metrics.per_cell.iter().enumerate() {
            prop_assert!(ledger.injected > 0, "cell {} injected nothing", c);
            prop_assert!(
                ledger.completed == ledger.injected,
                "cell {} lost work under scenario {}",
                c,
                library_spec(idx).name()
            );
        }
    }

    /// A scenario run is a pure function of (config, seed): identical
    /// fingerprints on a re-run, and the scenario's RNG streams never
    /// leak into a scenario-free run sharing the seed.
    #[test]
    fn scenario_runs_are_seed_deterministic(
        idx in 0usize..5,
        seed in 0u64..1_000,
    ) {
        let mut cfg = small(2, seed, 0.5);
        cfg.scenario = Some(library_spec(idx));
        let a = run_experiment(cfg.clone());
        let b = run_experiment(cfg);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.to_canonical_json(), b.to_canonical_json());
    }
}

/// Specs round-trip through their JSON file form byte-for-byte — what
/// `--scenario-file` reads is exactly what a spec serializes to.
#[test]
fn specs_round_trip_through_json() {
    for idx in 0..5 {
        let spec = library_spec(idx);
        let json = serde_json::to_string_pretty(&spec).expect("spec serializes");
        let back = ScenarioSpec::from_json(&json).expect("own JSON is valid");
        assert_eq!(back, spec, "{}", spec.name());
        assert_eq!(
            serde_json::to_string_pretty(&back).unwrap(),
            json,
            "{}: re-serialization is stable",
            spec.name()
        );
    }
}

/// Out-of-range knobs die at the parse boundary with typed errors.
#[test]
fn invalid_knobs_are_rejected_with_typed_errors() {
    for (input, check) in [
        (
            "black_friday",
            Box::new(|e: &ScenarioError| matches!(e, ScenarioError::UnknownScenario(_)))
                as Box<dyn Fn(&ScenarioError) -> bool>,
        ),
        (
            "urban_macro_burst:warp=9",
            Box::new(|e| matches!(e, ScenarioError::UnknownKnob { .. })),
        ),
        (
            "urban_macro_burst:boost",
            Box::new(|e| matches!(e, ScenarioError::MalformedKnob(_))),
        ),
        (
            "urban_macro_burst:amplitude=1.5",
            Box::new(|e| {
                matches!(
                    e,
                    ScenarioError::OutOfRange {
                        knob: "amplitude",
                        ..
                    }
                )
            }),
        ),
        (
            "stadium_flash_crowd:boost=0.5",
            Box::new(|e| matches!(e, ScenarioError::OutOfRange { knob: "boost", .. })),
        ),
        (
            "stadium_flash_crowd:boost=17",
            Box::new(|e| matches!(e, ScenarioError::OutOfRange { knob: "boost", .. })),
        ),
        (
            "sliced_deadlines:urllc_deadline=0.05",
            Box::new(|e| {
                matches!(
                    e,
                    ScenarioError::OutOfRange {
                        knob: "deadline_scale",
                        ..
                    }
                )
            }),
        ),
        (
            "mmtc_background:devices=0",
            Box::new(|e| {
                matches!(
                    e,
                    ScenarioError::OutOfRange {
                        knob: "devices",
                        ..
                    }
                )
            }),
        ),
        (
            "trace_replay:ttis=0",
            Box::new(|e| matches!(e, ScenarioError::EmptyTrace)),
        ),
        (
            "trace_replay:platform=abacus",
            Box::new(|e| matches!(e, ScenarioError::UnknownPlatform(_))),
        ),
    ] {
        let err = ScenarioSpec::parse(input).expect_err(input);
        assert!(check(&err), "{input}: wrong error {err}");
        assert!(!err.to_string().is_empty());
    }

    // Hand-edited JSON gets the same validation as the CLI form.
    let mut spec = library_spec(1);
    if let ScenarioKind::StadiumFlashCrowd(c) = &mut spec.kind {
        c.peak_boost = 99.0;
    }
    let json = serde_json::to_string_pretty(&spec).unwrap();
    let err = ScenarioSpec::from_json(&json).expect_err("out-of-range boost");
    assert!(
        matches!(err, ScenarioError::OutOfRange { knob: "boost", .. }),
        "{err}"
    );
}
