//! Fault-injection integration tests: determinism of the chaos layer and
//! graceful degradation of the full stack, exercised through the facade.

use concordia::core::{run_experiment, Colocation, SimConfig};
use concordia::platform::faults::{FaultKind, FaultPlan, FaultSpec, FaultTimeline};
use concordia::platform::pool::{PoolConfig, ScheduledDag, VranPool};
use concordia::platform::sched_api::DedicatedScheduler;
use concordia::platform::workloads::WorkloadKind;
use concordia::ran::cost::CostModel;
use concordia::ran::dag::{build_dag, SlotWorkload, UeAlloc};
use concordia::ran::numerology::SlotDirection;
use concordia::ran::{CellConfig, Nanos};
use proptest::prelude::*;

fn faulty_cfg(kinds: &[FaultKind]) -> SimConfig {
    let mut cfg = SimConfig::paper_20mhz();
    cfg.duration = Nanos::from_secs(1);
    cfg.profiling_slots = 300;
    cfg.load = 0.5;
    cfg.seed = 31;
    cfg.colocation = Colocation::Single(WorkloadKind::Redis);
    cfg.faults = FaultPlan::chaos(kinds, cfg.duration);
    cfg
}

#[test]
fn fault_experiments_are_bit_reproducible() {
    // The injector draws from forked seed streams, so a (seed, plan) pair
    // must give byte-identical reports — chaos runs are as reproducible as
    // fault-free ones.
    let kinds = [
        FaultKind::CoreOffline,
        FaultKind::AccelTimeout,
        FaultKind::PredictorBias,
        FaultKind::TrafficSurge,
    ];
    let a = run_experiment(faulty_cfg(&kinds));
    let b = run_experiment(faulty_cfg(&kinds));
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
    let fault = a.fault.expect("fault report present");
    assert_eq!(fault.windows.len(), kinds.len());
}

#[test]
fn fault_report_phases_account_for_every_dag() {
    let r = run_experiment(faulty_cfg(&[FaultKind::CoreOffline]));
    let fault = r.fault.expect("fault report present");
    let w = &fault.windows[0];
    assert_eq!(w.kind, "core_offline");
    assert!(w.start_us < w.end_us);
    // Every completed DAG lands in exactly one phase.
    assert_eq!(
        w.dags_before + w.dags_during + w.dags_after,
        r.metrics.dags as u64
    );
    assert!(w.violations_before <= w.dags_before);
    assert!(w.violations_during <= w.dags_during);
    assert!(w.violations_after <= w.dags_after);
    // The pool actually lost cores and shed their work.
    assert!(r.metrics.cores_failed >= 1, "no core went offline");
}

#[test]
fn concordia_recovers_after_core_offline() {
    let r = run_experiment(faulty_cfg(&[FaultKind::CoreOffline]));
    let fault = r.fault.expect("fault report present");
    let w = &fault.windows[0];
    assert!(w.dags_after > 0, "nothing completed after the window");
    assert!(
        w.recovered(),
        "reliability after {} < before {}",
        w.reliability_after,
        w.reliability_before
    );
}

#[test]
fn accel_outage_falls_back_to_cpu_decode() {
    // The FPGA drops off the bus mid-run: offloads must fall back to the
    // CPU LDPC path instead of panicking, and the run must finish.
    let mut cfg = faulty_cfg(&[FaultKind::AccelOutage]);
    cfg.fpga = true;
    let r = run_experiment(cfg);
    assert!(
        r.metrics.offload_fallbacks > 0,
        "outage produced no CPU fallbacks"
    );
    assert!(r.metrics.dags > 0);
}

fn fixed_timeline(
    kind: FaultKind,
    start_us: u64,
    dur_us: u64,
    severity: f64,
) -> std::sync::Arc<FaultTimeline> {
    std::sync::Arc::new(fixed_timeline_inner(kind, start_us, dur_us, severity))
}

fn fixed_timeline_inner(
    kind: FaultKind,
    start_us: u64,
    dur_us: u64,
    severity: f64,
) -> FaultTimeline {
    FaultPlan {
        specs: vec![FaultSpec::fixed(
            kind,
            Nanos::from_micros(start_us),
            Nanos::from_micros(dur_us),
            severity,
        )],
    }
    .resolve(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The recovery invariant: a core going offline mid-slot — whatever the
    /// timing and however many cores it takes — never loses a task. Every
    /// injected DAG still runs to completion on the survivors.
    #[test]
    fn core_offline_never_loses_a_task(
        n_ues in 1usize..6,
        start_us in 0u64..3_000,
        dur_us in 100u64..5_000,
        severity in 0.1f64..1.0,
    ) {
        let cell = CellConfig::tdd_100mhz();
        let cost = CostModel::new();
        let mut pool = VranPool::new(
            PoolConfig { cores: 4, rotation: None, ..PoolConfig::default() },
            cost.clone(),
            Box::new(DedicatedScheduler),
            13,
        );
        pool.set_fault_timeline(fixed_timeline(
            FaultKind::CoreOffline, start_us, dur_us, severity,
        ));
        let n_dags = 6usize;
        for i in 0..n_dags {
            let arrival = Nanos::from_micros(500 * i as u64);
            pool.run_until(arrival);
            let wl = SlotWorkload {
                direction: SlotDirection::Uplink,
                ues: (0..n_ues).map(|u| UeAlloc {
                    tb_bytes: 4_000 + 1_000 * u as u32,
                    mcs_index: 12,
                    snr_db: 18.0,
                    layers: 2,
                    prbs: 50,
                }).collect(),
            };
            let dag = build_dag(&cell, 0, i as u64, arrival, &wl);
            let wcet = dag.nodes.iter()
                .map(|n| cost.expected_cost(n.task.kind, &n.task.params))
                .collect();
            pool.inject_dag(ScheduledDag { dag, node_wcet: wcet });
        }
        pool.run_until(Nanos::from_millis(200));
        prop_assert_eq!(pool.active_dags(), 0);
        prop_assert_eq!(pool.metrics().slots.count(), n_dags);
        // Severity 1.0 must still leave at least one survivor.
        prop_assert!(pool.offline_cores() < 4);
    }

    /// Regression for the bare-unwrap hot paths in the pool (dispatch,
    /// event loop, free-list reuse): arbitrary interleavings of core-loss
    /// windows with DAG arrivals — fault edges landing before, between and
    /// inside arrival bursts — must never panic, never lose a task, and
    /// must behave identically with the trace recorder attached.
    #[test]
    fn core_loss_interleaved_with_arrivals_is_lossless_and_trace_invariant(
        n_ues in 1usize..5,
        arrivals in proptest::collection::vec(0u64..6_000, 1..8),
        windows in proptest::collection::vec((0u64..5_000, 100u64..2_500), 1..3),
        severity in 0.1f64..1.0,
    ) {
        let cell = CellConfig::tdd_100mhz();
        let cost = CostModel::new();
        let timeline = FaultPlan {
            specs: windows.iter().map(|&(start_us, dur_us)| FaultSpec::fixed(
                FaultKind::CoreOffline,
                Nanos::from_micros(start_us),
                Nanos::from_micros(dur_us),
                severity,
            )).collect(),
        }
        .resolve(0);

        let run = |traced: bool| {
            let mut pool = VranPool::new(
                PoolConfig { cores: 4, rotation: None, ..PoolConfig::default() },
                cost.clone(),
                Box::new(DedicatedScheduler),
                17,
            );
            if traced {
                pool.enable_trace(concordia::platform::trace::TraceConfig::default());
            }
            pool.set_fault_timeline(std::sync::Arc::new(timeline.clone()));
            let mut sorted = arrivals.clone();
            sorted.sort_unstable();
            for (i, &at_us) in sorted.iter().enumerate() {
                let arrival = Nanos::from_micros(at_us);
                pool.run_until(arrival);
                let wl = SlotWorkload {
                    direction: SlotDirection::Uplink,
                    ues: (0..n_ues).map(|u| UeAlloc {
                        tb_bytes: 3_000 + 800 * u as u32,
                        mcs_index: 10,
                        snr_db: 15.0,
                        layers: 2,
                        prbs: 40,
                    }).collect(),
                };
                let dag = build_dag(&cell, 0, i as u64, arrival, &wl);
                let wcet = dag.nodes.iter()
                    .map(|n| cost.expected_cost(n.task.kind, &n.task.params))
                    .collect();
                pool.inject_dag(ScheduledDag { dag, node_wcet: wcet });
            }
            pool.run_until(Nanos::from_millis(200));
            (
                pool.active_dags(),
                pool.metrics().slots.count(),
                pool.metrics().tasks_executed,
                pool.metrics().tasks_requeued,
                pool.metrics().cores_failed,
            )
        };

        let untraced = run(false);
        let traced = run(true);
        // No DAG may be left stuck in the pool.
        prop_assert_eq!(untraced.0, 0);
        prop_assert_eq!(untraced.1, arrivals.len());
        // The recorder must not perturb any outcome.
        prop_assert_eq!(untraced, traced);
    }
}
