//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning crates through the facade.

use concordia::platform::events::EventQueue;
use concordia::platform::pool::{PoolConfig, ScheduledDag, VranPool};
use concordia::platform::sched_api::DedicatedScheduler;
use concordia::predictor::qdt::QuantileDecisionTree;
use concordia::predictor::tree::{Tree, TreeConfig};
use concordia::predictor::{TrainingSample, WcetPredictor};
use concordia::ran::cost::CostModel;
use concordia::ran::dag::{build_dag, SlotWorkload, UeAlloc};
use concordia::ran::features::NUM_FEATURES;
use concordia::ran::numerology::SlotDirection;
use concordia::ran::{CellConfig, Nanos};
use concordia::stats::ring::MaxRingBuffer;
use concordia::stats::summary::quantile;
use proptest::prelude::*;

fn arb_ue() -> impl Strategy<Value = UeAlloc> {
    (1u32..60_000, 0u8..=27, -5.0f64..35.0, 1u32..=4, 1u32..=100).prop_map(
        |(tb_bytes, mcs_index, snr_db, layers, prbs)| UeAlloc {
            tb_bytes,
            mcs_index,
            snr_db,
            layers,
            prbs,
        },
    )
}

fn arb_workload(dir: SlotDirection) -> impl Strategy<Value = SlotWorkload> {
    proptest::collection::vec(arb_ue(), 0..10).prop_map(move |ues| SlotWorkload {
        direction: dir,
        ues,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_uplink_workload_builds_a_valid_dag(wl in arb_workload(SlotDirection::Uplink)) {
        let cell = CellConfig::tdd_100mhz();
        let dag = build_dag(&cell, 0, 0, Nanos::ZERO, &wl);
        prop_assert!(dag.validate().is_ok());
        // Critical path never exceeds total work; both positive.
        let cost = CostModel::new();
        let cp = dag.critical_path(&cost);
        let tw = dag.total_work(&cost);
        prop_assert!(cp <= tw);
        prop_assert!(cp > Nanos::ZERO);
    }

    #[test]
    fn any_downlink_workload_builds_a_valid_dag(wl in arb_workload(SlotDirection::Downlink)) {
        let cell = CellConfig::fdd_20mhz();
        let dag = build_dag(&cell, 0, 0, Nanos::ZERO, &wl);
        prop_assert!(dag.validate().is_ok());
        // Every non-empty DL DAG ends in the iFFT sink.
        let last = dag.nodes.last().unwrap();
        prop_assert!(last.succs.is_empty());
    }

    #[test]
    fn pool_executes_every_injected_node_exactly_once(
        wls in proptest::collection::vec(arb_workload(SlotDirection::Uplink), 1..6)
    ) {
        let cell = CellConfig::tdd_100mhz();
        let cost = CostModel::new();
        let mut pool = VranPool::new(
            PoolConfig { cores: 4, rotation: None, ..PoolConfig::default() },
            cost.clone(),
            Box::new(DedicatedScheduler),
            9,
        );
        let mut expected_tasks = 0u64;
        for (i, wl) in wls.iter().enumerate() {
            let arrival = Nanos::from_micros(500 * i as u64);
            pool.run_until(arrival);
            let dag = build_dag(&cell, 0, i as u64, arrival, wl);
            expected_tasks += dag.len() as u64;
            let wcet = dag.nodes.iter()
                .map(|n| cost.expected_cost(n.task.kind, &n.task.params))
                .collect();
            pool.inject_dag(ScheduledDag { dag, node_wcet: wcet });
        }
        pool.run_until(Nanos::from_millis(200));
        prop_assert_eq!(pool.active_dags(), 0);
        prop_assert_eq!(pool.metrics().tasks_executed, expected_tasks);
        prop_assert_eq!(pool.metrics().slots.count(), wls.len());
    }

    #[test]
    fn ring_buffer_max_always_matches_naive(ops in proptest::collection::vec(0.0f64..1e6, 1..400)) {
        let mut ring = MaxRingBuffer::new(32);
        let mut shadow: Vec<f64> = Vec::new();
        for &x in &ops {
            ring.push(x);
            shadow.push(x);
            if shadow.len() > 32 { shadow.remove(0); }
            let naive = shadow.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(ring.max(), Some(naive));
            prop_assert_eq!(ring.len(), shadow.len());
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        mut xs in proptest::collection::vec(-1e9f64..1e9, 2..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b);
        xs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert!(a >= xs[0] && b <= *xs.last().unwrap());
    }

    #[test]
    fn tree_routes_every_training_sample_to_its_leaf(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..1000.0), 20..200)
    ) {
        let xs: Vec<[f64; NUM_FEATURES]> = points.iter().map(|(v, _)| {
            let mut x = [0.0; NUM_FEATURES];
            x[0] = *v;
            x
        }).collect();
        let ys: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
        let cfg = TreeConfig { max_depth: 6, min_leaf: 5, n_thresholds: 8 };
        let (tree, leaves) = Tree::fit(&xs, &ys, &[0], &cfg);
        let total: usize = leaves.iter().map(|l| l.len()).sum();
        prop_assert_eq!(total, xs.len());
        for (leaf_id, samples) in leaves.iter().enumerate() {
            for &i in samples {
                prop_assert_eq!(tree.leaf_of(&xs[i]), leaf_id);
            }
        }
    }

    #[test]
    fn qdt_prediction_covers_all_training_samples(
        points in proptest::collection::vec((1.0f64..50.0, 1.0f64..500.0), 30..150)
    ) {
        let samples: Vec<TrainingSample> = points.iter().map(|(v, y)| {
            let mut x = [0.0; NUM_FEATURES];
            x[0] = *v;
            TrainingSample { x, runtime_us: *y }
        }).collect();
        let cfg = TreeConfig { max_depth: 4, min_leaf: 5, n_thresholds: 8 };
        let qdt = QuantileDecisionTree::fit(&samples, &[0], &cfg);
        // Max-of-leaf must upper-bound every sample the leaf was built from.
        for s in &samples {
            prop_assert!(qdt.predict_us(&s.x) >= s.runtime_us - 1e-9);
        }
    }

    #[test]
    fn nanos_arithmetic_is_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (x, y) = (Nanos(a), Nanos(b));
        prop_assert_eq!(x + y, Nanos(a + b));
        prop_assert_eq!((x + y).saturating_sub(y), x);
        prop_assert_eq!(y.saturating_sub(x + y), Nanos::ZERO);
        prop_assert_eq!(x.max(y).min(x.min(y)), x.min(y));
    }

    #[test]
    fn cost_model_is_monotone_in_codeblocks(
        cbs1 in 1u32..20, delta in 1u32..10, cores in 1u32..8
    ) {
        let cost = CostModel::new();
        let p = |n_cbs| concordia::ran::TaskParams {
            n_cbs,
            cb_bits: 8448,
            tb_bits: n_cbs * 8448,
            pool_cores: cores,
            ..Default::default()
        };
        let small = cost.expected_cost(concordia::ran::TaskKind::LdpcDecode, &p(cbs1));
        let large = cost.expected_cost(concordia::ran::TaskKind::LdpcDecode, &p(cbs1 + delta));
        prop_assert!(large > small);
    }

    #[test]
    fn ks_test_is_symmetric(
        a in proptest::collection::vec(0.0f64..100.0, 10..80),
        b in proptest::collection::vec(0.0f64..100.0, 10..80),
    ) {
        let r1 = concordia::stats::ks_two_sample(&a, &b);
        let r2 = concordia::stats::ks_two_sample(&b, &a);
        prop_assert!((r1.statistic - r2.statistic).abs() < 1e-12);
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
    }

    #[test]
    fn wasserstein_triangleish_and_nonnegative(
        a in proptest::collection::vec(0.0f64..100.0, 5..50),
        shift in 0.0f64..50.0,
    ) {
        let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let w = concordia::stats::wasserstein1(&a, &b);
        prop_assert!((w - shift).abs() < 1e-9);
    }

    /// Determinism contract of the event queue: events at the same
    /// timestamp pop in push order (FIFO), whatever mix of duplicated and
    /// distinct times is pushed. Heap order alone doesn't give this — the
    /// sequence-number tie-breaker does, and bit-reproducible simulation
    /// depends on it.
    #[test]
    fn event_queue_is_fifo_within_a_timestamp(
        times in proptest::collection::vec(0u64..20, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        // Stable sort by time — push order preserved within equal times.
        expected.sort_by_key(|&(t, _)| t);
        for (t, i) in expected {
            prop_assert_eq!(q.pop(), Some((Nanos(t), i)));
        }
        prop_assert!(q.is_empty());
    }
}
