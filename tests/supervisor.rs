//! Predictor control-plane integration tests: the self-healing lifecycle
//! under `drift_injection`, byte-level determinism of supervised runs,
//! the misprediction-guard reset on readmission, and the hot-swap
//! atomicity invariant, all exercised through the facade.

use concordia::core::{run_experiment, Colocation, SimConfig};
use concordia::platform::faults::{FaultKind, FaultPlan, FaultSpec};
use concordia::platform::workloads::WorkloadKind;
use concordia::predictor::{FixedPredictor, TrainingSample, WcetPredictor};
use concordia::ran::{FeatureVec, Nanos, NUM_FEATURES};
use concordia::sched::guard::MispredictionGuard;
use concordia::sched::{LaneState, PredictorSupervisor, SupervisorConfig};
use proptest::prelude::*;

/// A drift window that opens after calibration, holds for half the run
/// and leaves a tail for the readmitted model to prove itself on.
fn drift_cfg(supervised: bool) -> SimConfig {
    let mut cfg = SimConfig::paper_20mhz();
    cfg.duration = Nanos::from_secs(2);
    cfg.profiling_slots = 300;
    cfg.load = 0.5;
    cfg.seed = 11;
    cfg.colocation = Colocation::Single(WorkloadKind::Redis);
    cfg.faults = FaultPlan {
        specs: vec![FaultSpec::fixed(
            FaultKind::DriftInjection,
            Nanos::from_millis(400),
            Nanos::from_millis(1_100),
            0.9,
        )],
    };
    if supervised {
        cfg.supervisor = Some(SupervisorConfig {
            window_slots: 25,
            calibration_windows: 2,
            min_samples: 20,
            consecutive_windows: 2,
            retrain_min_samples: 200,
            shadow_windows: 2,
            ..SupervisorConfig::default()
        });
    } else {
        cfg.online_updates = false;
    }
    cfg
}

#[test]
fn supervisor_heals_drift_while_frozen_model_stays_degraded() {
    let sup_report = run_experiment(drift_cfg(true));
    let frozen_report = run_experiment(drift_cfg(false));

    let sup = sup_report
        .supervisor
        .as_ref()
        .expect("supervised run carries a supervisor report");
    assert!(sup.drift_detections >= 1, "drift never detected");
    assert!(sup.quarantines >= 1, "no lane was quarantined");
    assert!(sup.retrains >= 1, "no lane was retrained");
    assert!(sup.readmissions >= 1, "no lane was readmitted");
    assert!(
        sup.windows_to_readmission.is_some(),
        "readmission latency missing"
    );

    let w = sup_report
        .fault
        .as_ref()
        .and_then(|f| f.windows.first())
        .expect("drift window reported");
    assert!(w.dags_after > 0, "nothing completed after the window");
    assert!(
        w.recovered(),
        "post-readmission reliability {} fell below pre-fault {}",
        w.reliability_after,
        w.reliability_before
    );

    // The frozen baseline has no control plane to report and no
    // mechanism to absorb the new regime: while the drift holds it can
    // do no better than the supervised run.
    assert!(frozen_report.supervisor.is_none());
    let fw = frozen_report
        .fault
        .as_ref()
        .and_then(|f| f.windows.first())
        .expect("drift window reported");
    assert!(
        fw.reliability_during <= w.reliability_during + 1e-12,
        "frozen model ({}) outperformed the supervised one ({}) during drift",
        fw.reliability_during,
        w.reliability_during
    );
}

#[test]
fn supervised_runs_are_bit_reproducible() {
    // The control plane sits on the same forked-seed discipline as the
    // rest of the simulator: identical configs must serialize to
    // byte-identical reports, drift, retraining and all.
    let a = run_experiment(drift_cfg(true));
    let b = run_experiment(drift_cfg(true));
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

const X: FeatureVec = [0.0; NUM_FEATURES];

/// A minimal refittable model: one leaf, constant prediction; `refit`
/// adopts the replay maximum (the shape the quantile tree's own re-fit
/// takes, reduced to a single partition).
struct OneLeaf {
    wcet_us: f64,
}

impl WcetPredictor for OneLeaf {
    fn predict_us(&self, _x: &FeatureVec) -> f64 {
        self.wcet_us
    }
    fn observe(&mut self, _x: &FeatureVec, _runtime_us: f64) {}
    fn name(&self) -> &'static str {
        "one_leaf"
    }
    fn route(&self, _x: &FeatureVec) -> Option<usize> {
        Some(0)
    }
    fn refit(&mut self, samples: &[TrainingSample]) -> bool {
        if samples.is_empty() {
            return false;
        }
        self.wcet_us = samples.iter().map(|s| s.runtime_us).fold(0.0, f64::max);
        true
    }
    fn reference_quantiles(&self, _q: f64) -> Vec<f64> {
        vec![self.wcet_us]
    }
}

fn fixed_lane_supervisor(cfg: SupervisorConfig) -> PredictorSupervisor {
    let mut sup = PredictorSupervisor::new(cfg, 1);
    sup.install(
        0,
        Box::new(FixedPredictor { wcet_us: 100.0 }),
        Box::new(FixedPredictor { wcet_us: 400.0 }),
    );
    sup
}

#[test]
fn guard_reset_fires_exactly_once_per_readmission() {
    // Readmission swaps in a retrained predictor; the misprediction
    // guard's inflation was earned against the old one and must not
    // outlive it.
    let cfg = SupervisorConfig {
        window_slots: 10,
        calibration_windows: 0,
        min_samples: 10,
        consecutive_windows: 1,
        retrain_min_samples: 10,
        shadow_windows: 1,
        online_feed: false,
        ..SupervisorConfig::default()
    };
    let mut sup = PredictorSupervisor::new(cfg, 1);
    sup.install(
        0,
        Box::new(OneLeaf { wcet_us: 100.0 }),
        Box::new(FixedPredictor { wcet_us: 400.0 }),
    );
    let mut guard = MispredictionGuard::default();
    for _ in 0..200 {
        guard.observe(100.0, 300.0);
    }
    assert!(guard.inflation() > 1.0, "guard never inflated");

    // Quarantine: a full window of gross underprediction.
    for _ in 0..15 {
        sup.record(0, &X, 300.0);
    }
    sup.end_window(15, 15);
    assert_eq!(sup.lane_state(0), Some(LaneState::Quarantined));
    assert!(!sup.take_guard_reset(), "reset before any readmission");

    // Retrain (replay refilled post-quarantine) then pass the shadow gate.
    for _ in 0..15 {
        sup.record(0, &X, 300.0);
    }
    sup.end_window(15, 0);
    assert_eq!(sup.lane_state(0), Some(LaneState::Shadow));
    for _ in 0..15 {
        sup.record(0, &X, 300.0);
    }
    sup.end_window(15, 0);
    assert_eq!(sup.lane_state(0), Some(LaneState::Healthy));

    assert!(sup.take_guard_reset(), "readmission must request a reset");
    if sup.take_guard_reset() {
        panic!("reset must be consumed on take");
    }
    guard.reset();
    assert_eq!(guard.inflation(), 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hot-swap atomicity: whatever observations stream in, the serving
    /// predictor's output and the lane generation are constant between
    /// window boundaries — scheduling decisions inside a window can
    /// never see a half-swapped model.
    #[test]
    fn hot_swap_never_changes_predictions_within_a_window(
        runtimes in proptest::collection::vec(1.0f64..1_000.0, 1..120),
        windows in 1usize..6,
    ) {
        let cfg = SupervisorConfig {
            window_slots: 10,
            calibration_windows: 1,
            min_samples: 10,
            consecutive_windows: 1,
            retrain_min_samples: 20,
            shadow_windows: 1,
            online_feed: false,
            ..SupervisorConfig::default()
        };
        let mut sup = fixed_lane_supervisor(cfg);
        for _ in 0..windows {
            let served_at_open = sup.predict_us(0, &X);
            let gen_at_open = sup.generation(0);
            for rt in &runtimes {
                sup.record(0, &X, *rt);
                prop_assert_eq!(sup.predict_us(0, &X), served_at_open);
                prop_assert_eq!(sup.generation(0), gen_at_open);
            }
            sup.end_window(runtimes.len() as u64, 0);
        }
    }
}
