//! End-to-end tests of the observability layer: the trace recorder's
//! zero-perturbation contract, the Chrome trace-event export's structural
//! validity, and determinism of traced runs — all through the facade.

use concordia::core::{Colocation, SimConfig, Simulation};
use concordia::platform::faults::{FaultKind, FaultPlan};
use concordia::platform::trace::{export_chrome_trace, export_snapshots, TraceConfig};
use concordia::platform::workloads::WorkloadKind;
use concordia::ran::Nanos;
use concordia::sched::SupervisorConfig;
use serde::{map_get, Value};

/// A short run that still exercises every traced event class: platform
/// faults (core loss, accelerator outage), workload faults (predictor
/// bias), FPGA offloads, a supervisor, and a collocated workload. Kept
/// to 250 ms so the whole file stays cheap on a single-core CI box —
/// at 100 MHz that is still ~500 slots and tens of thousands of events.
fn workout(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_100mhz();
    cfg.cores = 8;
    cfg.duration = Nanos::from_millis(250);
    cfg.profiling_slots = 200;
    cfg.load = 0.6;
    cfg.colocation = Colocation::Single(WorkloadKind::Redis);
    cfg.fpga = true;
    cfg.supervisor = Some(SupervisorConfig::default());
    cfg.faults = FaultPlan::chaos(
        &[
            FaultKind::CoreOffline,
            FaultKind::AccelOutage,
            FaultKind::PredictorBias,
        ],
        cfg.duration,
    );
    cfg.seed = seed;
    cfg
}

#[test]
fn tracing_does_not_perturb_the_report() {
    let untraced = Simulation::new(workout(5)).run();

    let mut traced_cfg = workout(5);
    traced_cfg.trace = Some(TraceConfig::default());
    let (mut traced, recorder) = Simulation::new(traced_cfg).run_traced();

    // The only allowed difference is the trace accounting field itself.
    assert!(untraced.trace.is_none());
    assert!(traced.trace.is_some());
    traced.trace = None;
    assert_eq!(
        serde_json::to_string(&untraced).unwrap(),
        serde_json::to_string(&traced).unwrap(),
        "a traced run must be byte-identical to the untraced run"
    );

    let recorder = recorder.expect("tracing was on");
    assert!(!recorder.is_empty(), "the workout must record events");
    assert!(
        !recorder.snapshots().is_empty(),
        "periodic snapshots must be taken"
    );
}

#[test]
fn traced_runs_are_deterministic() {
    let mk = || {
        let mut cfg = workout(9);
        cfg.trace = Some(TraceConfig::default());
        let (report, rec) = Simulation::new(cfg).run_traced();
        let chrome = serde_json::to_string(&export_chrome_trace(&rec.unwrap())).unwrap();
        (serde_json::to_string(&report).unwrap(), chrome)
    };
    let (report_a, chrome_a) = mk();
    let (report_b, chrome_b) = mk();
    assert_eq!(report_a, report_b);
    assert_eq!(chrome_a, chrome_b, "the export itself must be byte-stable");
}

#[test]
fn chrome_export_is_valid_and_monotone_per_track() {
    let mut cfg = workout(11);
    cfg.trace = Some(TraceConfig::default());
    let (_, rec) = Simulation::new(cfg).run_traced();
    let rec = rec.unwrap();

    let json = serde_json::to_string(&export_chrome_trace(&rec)).unwrap();
    let parsed: Value = serde_json::from_str(&json).expect("export must be valid JSON");
    let Value::Map(top) = &parsed else {
        panic!("top level must be an object");
    };
    let Value::Seq(events) = map_get(top, "traceEvents") else {
        panic!("traceEvents must be an array");
    };
    assert!(!events.is_empty(), "export must carry events");

    let mut last_ts: Vec<(u64, f64)> = Vec::new();
    let mut spans = 0usize;
    for ev in events {
        let Value::Map(m) = ev else {
            panic!("every event is an object");
        };
        let Value::Str(ph) = map_get(m, "ph") else {
            panic!("every event has a phase");
        };
        if ph == "M" {
            continue;
        }
        if ph == "X" {
            spans += 1;
        }
        let Value::U64(tid) = map_get(m, "tid") else {
            panic!("every event has a numeric tid");
        };
        let ts = match map_get(m, "ts") {
            Value::F64(t) => *t,
            Value::U64(t) => *t as f64,
            other => panic!("ts must be numeric, got {other:?}"),
        };
        match last_ts.iter_mut().find(|(t, _)| t == tid) {
            Some((_, prev)) => {
                assert!(*prev <= ts, "track {tid}: ts {ts} after {prev}");
                *prev = ts;
            }
            None => last_ts.push((*tid, ts)),
        }
    }
    assert!(spans > 0, "task executions must appear as complete spans");

    // The snapshot exporter round-trips through JSON as well.
    let snap_json = serde_json::to_string(&export_snapshots(&rec)).unwrap();
    let snap: Value = serde_json::from_str(&snap_json).unwrap();
    assert!(matches!(snap, Value::Map(_) | Value::Seq(_)));
}

#[test]
fn report_trace_summary_matches_the_recorder() {
    let mut cfg = workout(3);
    cfg.trace = Some(TraceConfig {
        capacity: 4096, // small ring: force drops so the counter is live
        snapshot_slots: 50,
    });
    let (report, rec) = Simulation::new(cfg).run_traced();
    let rec = rec.unwrap();
    let summary = report.trace.expect("traced run reports a summary");
    assert_eq!(summary, rec.summary());
    assert_eq!(summary.capacity, 4096);
    assert_eq!(
        summary.events_recorded,
        rec.len() as u64 + summary.events_dropped
    );
}
