//! Cross-crate integration tests: the paper's headline behaviours,
//! exercised through the public facade API end to end.

use concordia::core::{run_experiment, Colocation, PredictorChoice, SchedulerChoice, SimConfig};
use concordia::platform::workloads::WorkloadKind;
use concordia::ran::Nanos;

fn base_20mhz() -> SimConfig {
    let mut cfg = SimConfig::paper_20mhz();
    cfg.duration = Nanos::from_secs(2);
    cfg.profiling_slots = 400;
    cfg.seed = 77;
    cfg
}

fn base_100mhz() -> SimConfig {
    let mut cfg = SimConfig::paper_100mhz();
    cfg.duration = Nanos::from_secs(2);
    cfg.profiling_slots = 400;
    cfg.seed = 77;
    cfg
}

#[test]
fn headline_concordia_shares_and_meets_deadlines_under_every_workload() {
    // The paper's abstract: 99.999% reliability while reclaiming most of
    // the idle CPU, for any collocated workload.
    for kind in WorkloadKind::ALL {
        let mut cfg = base_20mhz();
        cfg.load = 0.5;
        cfg.colocation = Colocation::Single(kind);
        let r = run_experiment(cfg);
        assert_eq!(
            r.metrics.violations,
            0,
            "{}: {} violations",
            kind.name(),
            r.metrics.violations
        );
        assert!(
            r.metrics.reclaimed_fraction > 0.3,
            "{}: reclaimed {}",
            kind.name(),
            r.metrics.reclaimed_fraction
        );
    }
}

#[test]
fn flexran_tail_inflates_under_redis_but_not_isolated() {
    let mut iso = base_100mhz();
    iso.cores = 8;
    iso.scheduler = SchedulerChoice::FlexRan;
    let iso_r = run_experiment(iso);

    let mut redis = base_100mhz();
    redis.cores = 8;
    redis.scheduler = SchedulerChoice::FlexRan;
    redis.colocation = Colocation::Single(WorkloadKind::Redis);
    let redis_r = run_experiment(redis);

    assert_eq!(iso_r.metrics.violations, 0);
    let iso_p = iso_r.metrics.p99999_latency_us.expect("isolated p99999");
    let redis_p = redis_r.metrics.p99999_latency_us.expect("redis p99999");
    assert!(
        redis_p > 1.5 * iso_p,
        "colocation must inflate FlexRAN's tail: {iso_p} vs {redis_p}"
    );
}

#[test]
fn concordia_beats_flexran_on_interference_counters() {
    // Fig. 9: Concordia's stall increase is a small fraction of FlexRAN's.
    let mk = |sched| {
        let mut cfg = base_100mhz();
        cfg.cores = 8;
        cfg.scheduler = sched;
        cfg.colocation = Colocation::Single(WorkloadKind::Redis);
        run_experiment(cfg)
    };
    let conc = mk(SchedulerChoice::concordia());
    let flex = mk(SchedulerChoice::FlexRan);
    assert!(
        flex.metrics.stall_cycles_pct > 3.0 * conc.metrics.stall_cycles_pct,
        "flexran {} vs concordia {}",
        flex.metrics.stall_cycles_pct,
        conc.metrics.stall_cycles_pct
    );
    // Fig. 10: and far more scheduling events.
    assert!(flex.metrics.wake_events > 3 * conc.metrics.wake_events);
}

#[test]
fn reclaimed_cpu_decreases_with_load() {
    // Fig. 8a's monotone shape.
    let mut prev = f64::INFINITY;
    for load in [0.05, 0.5, 1.0] {
        let mut cfg = base_20mhz();
        cfg.load = load;
        cfg.colocation = Colocation::Single(WorkloadKind::Redis);
        let r = run_experiment(cfg);
        assert!(
            r.metrics.reclaimed_fraction < prev + 0.02,
            "reclaimed must not grow with load: {} at {load}",
            r.metrics.reclaimed_fraction
        );
        prev = r.metrics.reclaimed_fraction;
    }
}

#[test]
fn pwcet_predictor_reclaims_less_than_qdt() {
    // Fig. 13's direction at a low load where parameterization matters.
    let mk = |pred| {
        let mut cfg = base_20mhz();
        cfg.load = 0.25;
        cfg.predictor = pred;
        cfg.colocation = Colocation::Single(WorkloadKind::Redis);
        run_experiment(cfg)
    };
    let qdt = mk(PredictorChoice::QuantileDt);
    let pwcet = mk(PredictorChoice::PwcetEvt);
    assert!(
        qdt.metrics.reclaimed_fraction > pwcet.metrics.reclaimed_fraction + 0.03,
        "qdt {} vs pwcet {}",
        qdt.metrics.reclaimed_fraction,
        pwcet.metrics.reclaimed_fraction
    );
}

#[test]
fn fpga_offload_cuts_cpu_demand() {
    // Table 3's direction: with LDPC offloaded, the same traffic needs
    // far less CPU.
    let mk = |fpga| {
        let mut cfg = base_100mhz();
        cfg.n_cells = 1;
        cfg.cores = 6;
        cfg.fpga = fpga;
        run_experiment(cfg)
    };
    let cpu = mk(false);
    let off = mk(true);
    assert_eq!(off.metrics.violations, 0);
    assert!(
        off.metrics.vran_busy_ms < 0.75 * cpu.metrics.vran_busy_ms,
        "offload busy {} vs cpu {}",
        off.metrics.vran_busy_ms,
        cpu.metrics.vran_busy_ms
    );
}

#[test]
fn experiments_are_reproducible_from_the_seed() {
    let mk = || {
        let mut cfg = base_20mhz();
        cfg.colocation = Colocation::Mix;
        cfg.seed = 1234;
        run_experiment(cfg)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.metrics.dags, b.metrics.dags);
    assert_eq!(a.metrics.mean_latency_us, b.metrics.mean_latency_us);
    assert_eq!(a.metrics.wake_events, b.metrics.wake_events);
    assert_eq!(a.metrics.tasks_executed, b.metrics.tasks_executed);
}

#[test]
fn different_seeds_give_different_runs() {
    let mk = |seed| {
        let mut cfg = base_20mhz();
        cfg.seed = seed;
        run_experiment(cfg)
    };
    let a = mk(1);
    let b = mk(2);
    assert_ne!(a.metrics.mean_latency_us, b.metrics.mean_latency_us);
}

#[test]
fn shenango_never_wins_on_both_axes() {
    // §6.3's dilemma: across its threshold range, the Shenango variant
    // never simultaneously matches Concordia's reliability AND its
    // reclaimed CPU.
    let mut conc_cfg = base_20mhz();
    conc_cfg.load = 0.75;
    conc_cfg.colocation = Colocation::Single(WorkloadKind::Redis);
    let conc = run_experiment(conc_cfg);

    for thr_us in [5u64, 50, 200] {
        let mut cfg = base_20mhz();
        cfg.load = 0.75;
        cfg.scheduler = SchedulerChoice::Shenango(Nanos::from_micros(thr_us));
        cfg.colocation = Colocation::Single(WorkloadKind::Redis);
        let r = run_experiment(cfg);
        let r_p = r.metrics.p99999_latency_us.expect("shenango p99999");
        let conc_p = conc.metrics.p99999_latency_us.expect("concordia p99999");
        let as_reliable = r_p <= conc_p;
        let shares_as_much = r.metrics.reclaimed_fraction >= conc.metrics.reclaimed_fraction - 0.02;
        assert!(
            !(as_reliable && shares_as_much),
            "threshold {thr_us}us beat Concordia on both axes: tail {r_p} vs {conc_p}, \
             reclaimed {} vs {}",
            r.metrics.reclaimed_fraction,
            conc.metrics.reclaimed_fraction
        );
    }
}

#[test]
fn report_serializes_to_json() {
    let mut cfg = base_20mhz();
    cfg.duration = Nanos::from_millis(500);
    cfg.profiling_slots = 200;
    let r = run_experiment(cfg);
    let json = serde_json::to_string(&r).unwrap();
    assert!(json.contains("\"scheduler\":\"concordia\""));
    let back: concordia::core::ExperimentReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.metrics.dags, r.metrics.dags);
}

#[test]
fn lte_cells_run_end_to_end_with_turbo_coding() {
    // The §7/4G side: FlexRAN is a 4G+5G stack, and the reproduction's LTE
    // cells (Turbo codecs, 1 ms TTIs) go through the same pipeline.
    let mut cfg = base_20mhz();
    cfg.cell = concordia::ran::CellConfig::lte_20mhz();
    cfg.colocation = Colocation::Single(WorkloadKind::Redis);
    let r = run_experiment(cfg);
    assert_eq!(r.metrics.violations, 0);
    assert!(r.metrics.reclaimed_fraction > 0.3);
    assert!(r.metrics.tasks_executed > 10_000);
}

#[test]
fn mac_in_pool_adds_work_without_losing_reliability() {
    // §7 extension: the MAC schedulers run as pool deadline tasks.
    let mut base = base_20mhz();
    base.load = 0.5;
    let plain = run_experiment(base.clone());
    let mut with_mac = base;
    with_mac.mac_in_pool = true;
    let mac = run_experiment(with_mac);
    assert_eq!(mac.metrics.violations, 0);
    assert!(
        mac.metrics.tasks_executed > plain.metrics.tasks_executed,
        "MAC DAGs must add executed tasks: {} vs {}",
        mac.metrics.tasks_executed,
        plain.metrics.tasks_executed
    );
    // Two MAC tasks per cell per slot.
    let expected_extra = (plain.metrics.dags as u64 / 2) * 2;
    let extra = mac.metrics.tasks_executed - plain.metrics.tasks_executed;
    assert!(
        extra > expected_extra / 2,
        "extra {extra} vs expected ~{expected_extra}"
    );
}
