//! Cross-crate integration tests of the full prediction pipeline:
//! profiling → Algorithm 1 feature selection → model training → online
//! adaptation, for every predictor variant and every task kind.

use concordia::core::profile::{profile, train_bank, train_predictor};
use concordia::core::PredictorChoice;
use concordia::predictor::featsel::{dcor_ranking, select_features, FeatSelConfig};
use concordia::ran::cost::CostModel;
use concordia::ran::features::{extract, handpicked, Feature};
use concordia::ran::task::{TaskKind, TaskParams};
use concordia::ran::transport::Mcs;
use concordia::ran::CellConfig;
use concordia::stats::rng::Rng;

fn decode_params(n_cbs: u32, snr_margin: f64, pool_cores: u32) -> TaskParams {
    let mcs = Mcs::from_index(16);
    TaskParams {
        n_cbs,
        cb_bits: 8448,
        tb_bits: n_cbs * 8448,
        mcs_index: 16,
        modulation_order: mcs.modulation_order,
        code_rate: mcs.code_rate,
        snr_db: mcs.required_snr_db() + snr_margin,
        layers: 2,
        prbs: 60,
        pool_cores,
        ..TaskParams::default()
    }
}

#[test]
fn algorithm1_selects_the_decode_cost_drivers() {
    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let ds = profile(&cell, &cost, 1_500, 8, 3);
    let decode = ds.samples(TaskKind::LdpcDecode);

    // Distance correlation must rank the codeblock count at/near the top.
    let ranking = dcor_ranking(decode, 600);
    let top4: Vec<usize> = ranking.iter().take(4).map(|(f, _)| *f).collect();
    assert!(
        top4.contains(&(Feature::NCbs as usize)) || top4.contains(&(Feature::TbBits as usize)),
        "volume feature must rank highly: {ranking:?}"
    );

    // The full Algorithm 1 output contains the hand-picked features.
    let feats = select_features(
        decode,
        &handpicked(TaskKind::LdpcDecode),
        &FeatSelConfig::default(),
    );
    assert!(feats.contains(&(Feature::NCbs as usize)));
    assert!(feats.contains(&(Feature::PoolCores as usize)));
    assert!(feats.len() <= 10, "selection must stay compact: {feats:?}");
}

#[test]
fn every_predictor_choice_trains_for_every_kind() {
    let cell = CellConfig::tdd_100mhz();
    let cost = CostModel::new();
    let ds = profile(&cell, &cost, 800, 8, 4);
    for choice in [
        PredictorChoice::QuantileDt,
        PredictorChoice::LinearRegression,
        PredictorChoice::GradientBoosting,
        PredictorChoice::PwcetEvt,
        PredictorChoice::Oracle,
    ] {
        let bank = train_bank(&ds, choice, &cost);
        assert!(
            bank.len() >= 15,
            "{}: only {} kinds trained",
            choice.name(),
            bank.len()
        );
        // Every trained model emits finite positive predictions.
        let x = extract(&decode_params(6, 5.0, 4));
        let p = bank
            .predict(TaskKind::LdpcDecode, &x)
            .expect("decode trained");
        assert!(p.as_micros_f64() > 1.0 && p.as_micros_f64() < 100_000.0);
    }
}

#[test]
fn qdt_is_the_tightest_accurate_model() {
    // Fig. 14's conclusion as a pipeline-level assertion: on fresh samples,
    // qdt and gbt both miss rarely, and qdt's mean prediction is no more
    // pessimistic than gbt's.
    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let ds = profile(&cell, &cost, 2_500, 8, 5);
    let decode = ds.samples(TaskKind::LdpcDecode);

    let evaluate = |choice: PredictorChoice| {
        let mut model = train_predictor(TaskKind::LdpcDecode, decode, choice, &cost);
        let mut rng = Rng::new(6);
        let n = 40_000;
        let (mut misses, mut pred_sum) = (0u64, 0.0);
        for _ in 0..n {
            let p = decode_params(
                rng.range_u64(1, 15) as u32,
                rng.range_f64(-2.0, 10.0),
                rng.range_u64(1, 8) as u32,
            );
            let runtime = cost
                .sample_runtime(TaskKind::LdpcDecode, &p, 1.0, &mut rng)
                .as_micros_f64();
            let x = extract(&p);
            let pred = model.predict_us(&x);
            pred_sum += pred;
            if runtime > pred {
                misses += 1;
            }
            model.observe(&x, runtime);
        }
        (misses as f64 / n as f64, pred_sum / n as f64)
    };

    let (qdt_miss, qdt_pred) = evaluate(PredictorChoice::QuantileDt);
    let (gbt_miss, gbt_pred) = evaluate(PredictorChoice::GradientBoosting);
    let (lin_miss, _) = evaluate(PredictorChoice::LinearRegression);

    assert!(qdt_miss < 0.01, "qdt miss rate {qdt_miss}");
    assert!(gbt_miss < 0.02, "gbt miss rate {gbt_miss}");
    assert!(
        lin_miss > 2.0 * qdt_miss.max(1e-4),
        "linreg must miss more: {lin_miss} vs {qdt_miss}"
    );
    assert!(
        qdt_pred < gbt_pred * 1.15,
        "qdt must not be much more pessimistic: {qdt_pred} vs {gbt_pred}"
    );
}

#[test]
fn online_phase_restores_coverage_after_regime_change() {
    // §4.2's claim end to end: after interference shifts runtimes +30%,
    // the frozen model misses often; feeding observations restores
    // coverage without retraining the tree.
    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let ds = profile(&cell, &cost, 1_500, 8, 7);
    let decode = ds.samples(TaskKind::LdpcDecode);

    let run = |observe: bool| {
        let mut model = train_predictor(
            TaskKind::LdpcDecode,
            decode,
            PredictorChoice::QuantileDt,
            &cost,
        );
        let mut rng = Rng::new(8);
        // Warm-up exposure to the new regime.
        for _ in 0..30_000 {
            let p = decode_params(rng.range_u64(1, 15) as u32, 5.0, 4);
            let r = cost
                .sample_runtime(TaskKind::LdpcDecode, &p, 1.3, &mut rng)
                .as_micros_f64();
            if observe {
                model.observe(&extract(&p), r);
            }
        }
        // Measurement phase.
        let n = 20_000;
        let mut misses = 0;
        for _ in 0..n {
            let p = decode_params(rng.range_u64(1, 15) as u32, 5.0, 4);
            let r = cost
                .sample_runtime(TaskKind::LdpcDecode, &p, 1.3, &mut rng)
                .as_micros_f64();
            if r > model.predict_us(&extract(&p)) {
                misses += 1;
            }
        }
        misses as f64 / n as f64
    };

    let frozen = run(false);
    let online = run(true);
    assert!(
        online < frozen / 3.0,
        "online updates must cut the miss rate: frozen {frozen} online {online}"
    );
    assert!(online < 0.01, "online miss rate {online}");
}

#[test]
fn oracle_and_pwcet_bracket_the_qdt() {
    // The oracle (ground truth + margin) is the tightest; pWCET (one value
    // per task) is the loosest for a small input; QDT sits between.
    let cell = CellConfig::fdd_20mhz();
    let cost = CostModel::new();
    let ds = profile(&cell, &cost, 1_500, 8, 9);
    let decode = ds.samples(TaskKind::LdpcDecode);
    let small = extract(&decode_params(1, 8.0, 1));

    let pred =
        |choice| train_predictor(TaskKind::LdpcDecode, decode, choice, &cost).predict_us(&small);
    let oracle = pred(PredictorChoice::Oracle);
    let qdt = pred(PredictorChoice::QuantileDt);
    let pwcet = pred(PredictorChoice::PwcetEvt);
    assert!(
        oracle < qdt && qdt < pwcet,
        "expected oracle {oracle} < qdt {qdt} < pwcet {pwcet}"
    );
}
