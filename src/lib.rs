//! # concordia
//!
//! A from-scratch Rust reproduction of **"Concordia: Teaching the 5G vRAN
//! to Share Compute"** (Foukas & Radunovic, SIGCOMM 2021): a userspace
//! microsecond-granularity deadline scheduling framework that lets a
//! virtualized RAN share its CPU cores with best-effort workloads while
//! meeting 99.999 % of its sub-millisecond signal-processing deadlines,
//! driven by a quantile-decision-tree WCET predictor.
//!
//! This facade crate re-exports every subsystem:
//!
//! * [`stats`] — deterministic statistics toolkit (RNG, KS test,
//!   Wasserstein, distance correlation, EVT, CART support).
//! * [`ran`] — 5G NR domain model (cells, slots, task DAGs, calibrated
//!   cost model, FPGA offload).
//! * [`traffic`] — bursty cell-traffic generation calibrated to the
//!   paper's LTE traces.
//! * [`platform`] — discrete-event compute-platform simulator (EDF
//!   workers, OS wake latency, cache interference, best-effort workloads).
//! * [`predictor`] — WCET predictors: quantile decision trees plus the
//!   linear / gradient-boosting / EVT baselines.
//! * [`sched`] — the Concordia federated mixed-criticality scheduler and
//!   the FlexRAN / Shenango / utilization baselines.
//! * [`core`] — the end-to-end experiment engine.
//! * [`search`] — adversarial scenario search: strategies that hunt for
//!   SLA-breaking fault × traffic × reconfiguration schedules, shrink
//!   them to minimal counterexamples, and package replayable repro
//!   artifacts.
//!
//! ## Quickstart
//!
//! ```
//! use concordia::core::{run_experiment, SimConfig};
//! use concordia::ran::Nanos;
//!
//! let mut cfg = SimConfig::paper_20mhz();
//! cfg.duration = Nanos::from_millis(500); // keep the doctest fast
//! cfg.profiling_slots = 200;
//! cfg.load = 0.25;
//! let report = run_experiment(cfg);
//! assert!(report.metrics.reliability > 0.999);
//! println!("{}", report.one_liner());
//! ```

pub use concordia_core as core;
pub use concordia_platform as platform;
pub use concordia_predictor as predictor;
pub use concordia_ran as ran;
pub use concordia_sched as sched;
pub use concordia_search as search;
pub use concordia_stats as stats;
pub use concordia_traffic as traffic;
